// Package mapreduce implements a working miniature of Hadoop 0.20's
// MapReduce runtime over the simulated cluster: JobConf job description,
// client/tracker job submission, heartbeat-driven task scheduling with
// pluggable schedulers (FIFO and Fair), map and reduce task execution
// with real user functions, shuffle, counters, and task-failure
// recovery. Task durations (disk, network, CPU) are charged to the
// discrete-event clock, so scheduling behaviour and utilisation match a
// physical cluster's shape while the whole run executes in
// milliseconds.
//
// The incremental-input extension from the paper lives in
// internal/core; this package only exposes the hooks it needs
// (AddSplits, EndOfInput, status snapshots), keeping the JobTracker
// agnostic of Input Providers exactly as §IV prescribes.
package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
)

// Standard JobConf keys. The dynamic.* keys are the paper's §IV
// extension of the JobConf parameter set.
const (
	// ConfJobName is the human-readable job name.
	ConfJobName = "job.name"
	// ConfUser identifies the submitting user (Fair Scheduler pool).
	ConfUser = "job.user"
	// ConfNumReduces sets the reduce-task count (default 1).
	ConfNumReduces = "job.reduces"

	// ConfDynamicJob marks the job as dynamic ("dynamic.job" in §IV):
	// input is provided incrementally by an Input Provider.
	ConfDynamicJob = "dynamic.job"
	// ConfDynamicPolicy names the growth policy ("dynamic.job.policy").
	ConfDynamicPolicy = "dynamic.job.policy"
	// ConfDynamicProvider names the InputProvider implementation
	// ("dynamic.input.provider").
	ConfDynamicProvider = "dynamic.input.provider"

	// ConfInputPath selects the job's input-path mode
	// ("dynamic.input.path"): full, skip or index — see the InputPath*
	// constants. Unset falls back to the runtime's Config.InputPath,
	// then to full. Only jobs declaring a FilterFingerprint are
	// affected.
	ConfInputPath = "dynamic.input.path"

	// ConfQueryID carries the stable per-query ID assigned by the
	// qstats registry ("dynamic.query.id"); empty when query-level
	// observability is disabled. It flows from the Hive session into
	// every log record the runtime emits for the job (vlog key "qid").
	ConfQueryID = "dynamic.query.id"

	// ConfSampleSize is the required sample size k for sampling jobs.
	ConfSampleSize = "sampling.size"
	// ConfPredicate is the sampling predicate in SQL syntax.
	ConfPredicate = "sampling.predicate"
	// ConfProjection is the comma-separated output column list.
	ConfProjection = "sampling.projection"
	// ConfRandomSample selects a uniform random k of the candidate
	// records instead of the first k (the paper's footnote 1: "one
	// could do a 'random' k instead, to get more random results").
	ConfRandomSample = "sampling.random"
	// ConfRandomSeed seeds the random-k selection.
	ConfRandomSeed = "sampling.random.seed"
)

// JobConf is the primary interface for describing a MapReduce job
// (mirroring Hadoop's JobConf): a set of string configuration
// parameters with typed accessors.
type JobConf struct {
	m map[string]string
}

// NewJobConf returns an empty configuration.
func NewJobConf() *JobConf {
	return &JobConf{m: make(map[string]string)}
}

// Clone returns an independent copy.
func (c *JobConf) Clone() *JobConf {
	n := NewJobConf()
	for k, v := range c.m {
		n.m[k] = v
	}
	return n
}

// Set stores a parameter.
func (c *JobConf) Set(key, value string) { c.m[key] = value }

// SetInt stores an integer parameter.
func (c *JobConf) SetInt(key string, v int64) { c.m[key] = strconv.FormatInt(v, 10) }

// SetBool stores a boolean parameter.
func (c *JobConf) SetBool(key string, v bool) { c.m[key] = strconv.FormatBool(v) }

// SetFloat stores a float parameter.
func (c *JobConf) SetFloat(key string, v float64) {
	c.m[key] = strconv.FormatFloat(v, 'g', -1, 64)
}

// Get returns the parameter, or def when absent.
func (c *JobConf) Get(key, def string) string {
	if v, ok := c.m[key]; ok {
		return v
	}
	return def
}

// Has reports whether the key is set.
func (c *JobConf) Has(key string) bool {
	_, ok := c.m[key]
	return ok
}

// GetInt returns an integer parameter, or def when absent or malformed.
func (c *JobConf) GetInt(key string, def int64) int64 {
	if v, ok := c.m[key]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// GetBool returns a boolean parameter, or def when absent or malformed.
func (c *JobConf) GetBool(key string, def bool) bool {
	if v, ok := c.m[key]; ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

// GetFloat returns a float parameter, or def when absent or malformed.
func (c *JobConf) GetFloat(key string, def float64) float64 {
	if v, ok := c.m[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// Keys returns all set keys, sorted.
func (c *JobConf) Keys() []string {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the configuration for diagnostics.
func (c *JobConf) String() string {
	s := ""
	for _, k := range c.Keys() {
		s += fmt.Sprintf("%s=%s\n", k, c.m[k])
	}
	return s
}
