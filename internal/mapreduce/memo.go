package mapreduce

import (
	"sync"

	"dynamicmr/internal/data"
)

// MapOutputCache memoises map-task outputs across jobs, keyed by the
// identity of the split's record source plus the job's MemoKey. The
// experiment harness shares one cache across a sweep's cells: within a
// sweep the scheduling policies change *when* each split is mapped,
// never *what* mapping it produces, so the first job to map a split
// computes the output and every later job — on any JobTracker sharing
// the cache — reuses it.
//
// Simulated cost accounting is untouched by memoization: the runtime
// charges I/O and CPU from split metadata before execMapper runs, so a
// cache hit changes real wall-clock only, never virtual time or
// results.
//
// Cached Collectors are shared and must be treated as immutable; the
// runtime only reads them (see JobSpec.MemoKey for the purity
// contract a job accepts by setting a key). Sources used as keys must
// have comparable dynamic types (every source in this repository is a
// pointer).
//
// The cache is safe for concurrent use by JobTrackers on separate
// goroutines.
type MapOutputCache struct {
	mu     sync.Mutex
	m      map[memoKey]*Collector
	hits   uint64
	misses uint64
}

type memoKey struct {
	src data.Source
	job string
}

// NewMapOutputCache returns an empty cache.
func NewMapOutputCache() *MapOutputCache {
	return &MapOutputCache{m: make(map[memoKey]*Collector)}
}

func (c *MapOutputCache) lookup(src data.Source, job string) (*Collector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[memoKey{src, job}]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return out, ok
}

func (c *MapOutputCache) store(src data.Source, job string, out *Collector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[memoKey{src, job}] = out
}

// Stats returns the lookup hit/miss counts so far.
func (c *MapOutputCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoised split outputs.
func (c *MapOutputCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
