package mapreduce

import "fmt"

// TaskEventType classifies runtime events.
type TaskEventType uint8

// Task lifecycle events observable via JobTracker.Subscribe.
const (
	// EventJobSubmitted fires at job submission.
	EventJobSubmitted TaskEventType = iota
	// EventMapStarted fires when a map attempt occupies a slot.
	EventMapStarted
	// EventMapFinished fires when a map attempt completes successfully.
	EventMapFinished
	// EventMapFailed fires when a map attempt fails.
	EventMapFailed
	// EventMapKilled fires when a racing attempt is cancelled.
	EventMapKilled
	// EventReduceStarted fires when a reduce attempt occupies a slot.
	EventReduceStarted
	// EventReduceFinished fires when a reduce attempt completes.
	EventReduceFinished
	// EventJobFinished fires at job termination (success or failure).
	EventJobFinished
)

// String names the event type.
func (t TaskEventType) String() string {
	switch t {
	case EventJobSubmitted:
		return "JOB_SUBMITTED"
	case EventMapStarted:
		return "MAP_STARTED"
	case EventMapFinished:
		return "MAP_FINISHED"
	case EventMapFailed:
		return "MAP_FAILED"
	case EventMapKilled:
		return "MAP_KILLED"
	case EventReduceStarted:
		return "REDUCE_STARTED"
	case EventReduceFinished:
		return "REDUCE_FINISHED"
	case EventJobFinished:
		return "JOB_FINISHED"
	default:
		return fmt.Sprintf("TaskEventType(%d)", uint8(t))
	}
}

// TaskEvent is one observable runtime occurrence.
type TaskEvent struct {
	// Time in virtual seconds.
	Time float64
	Type TaskEventType
	// JobID identifies the job.
	JobID int
	// TaskIndex is the map/reduce task ordinal (-1 for job events).
	TaskIndex int
	// Node is the executing node (-1 when not applicable).
	Node int
	// Attempt is the attempt ordinal (1-based; 0 when not applicable).
	Attempt int
	// Speculative marks backup attempts.
	Speculative bool
}

// String renders the event as one log line.
func (e TaskEvent) String() string {
	spec := ""
	if e.Speculative {
		spec = " (speculative)"
	}
	return fmt.Sprintf("t=%8.2fs job=%d %-16s task=%d node=%d attempt=%d%s",
		e.Time, e.JobID, e.Type, e.TaskIndex, e.Node, e.Attempt, spec)
}

// Subscribe registers a listener for runtime events. Listeners are
// called synchronously in subscription order; they must not mutate the
// tracker. Passing nil is a no-op.
func (jt *JobTracker) Subscribe(fn func(TaskEvent)) {
	if fn != nil {
		jt.listeners = append(jt.listeners, fn)
	}
}

// emit publishes an event to all listeners.
func (jt *JobTracker) emit(e TaskEvent) {
	if len(jt.listeners) == 0 {
		return
	}
	e.Time = jt.eng.Now()
	for _, fn := range jt.listeners {
		fn(e)
	}
}
