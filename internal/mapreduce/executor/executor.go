// Package executor provides a bounded worker pool that runs pure map
// record scans off the simulator thread.
//
// The discrete-event simulator charges every map attempt its simulated
// I/O and CPU seconds from split metadata, so the *real* record scan a
// map task performs contributes nothing to virtual time — it is pure
// wall-clock cost, and it is the dominant real-world cost of a deep
// experiment cell. The executor decouples that compute from the
// single-threaded simulation loop: the JobTracker submits the scan when
// an attempt's phase chain starts (its inputs are fixed at that point),
// lets the simulation proceed, and joins the future when the
// completion event fires — blocking only if real compute is slower
// than simulated time.
//
// Determinism contract (enforced by the caller, see the mapreduce
// package): only jobs that declare purity via JobSpec.MemoKey are
// submitted, results are joined on the simulator goroutine in event
// order, and concurrent submissions for the same (source, MemoKey) are
// deduplicated (singleflight), so a run's outputs are byte-identical
// whether the pool has 0, 1 or N workers.
package executor

import (
	"sync"
)

// Key identifies one pure scan: the split's record source (compared by
// identity; every source in this repository is a pointer) plus the
// job's MemoKey purity declaration.
type Key struct {
	Source any
	Memo   string
}

// Future is the pending (or completed) result of a submitted scan.
// Wait may be called from any goroutine; a Future may be shared by
// several attempts whose keys collided (singleflight).
type Future struct {
	done chan struct{}
	val  any
	err  error
}

// Wait blocks until the scan completes and returns its result.
func (f *Future) Wait() (any, error) {
	<-f.done
	return f.val, f.err
}

// Ready reports whether Wait would return without blocking.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Resolved returns an already-completed Future carrying v. The caller
// uses it when a cache already holds the scan's output, so the join
// path is uniform.
func Resolved(v any) *Future {
	f := &Future{done: make(chan struct{}), val: v}
	close(f.done)
	return f
}

type task struct {
	key Key
	fn  func() (any, error)
	fut *Future
}

// Pool is a bounded worker pool with singleflight submission. The zero
// value is not usable; use NewPool. A nil *Pool is a valid "disabled"
// pool: Submit on it is not allowed (callers gate on Enabled).
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*task
	inflight map[Key]*Future
	workers  int
	closed   bool
	wg       sync.WaitGroup

	submitted uint64 // scans dispatched to workers
	deduped   uint64 // submissions coalesced onto an in-flight future
	completed uint64 // scans finished by workers
}

// NewPool starts a pool with the given number of worker goroutines.
// workers <= 0 returns nil — the disabled pool, which callers treat as
// "execute inline".
func NewPool(workers int) *Pool {
	if workers <= 0 {
		return nil
	}
	p := &Pool{
		inflight: make(map[Key]*Future),
		workers:  workers,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Enabled reports whether the pool can accept submissions.
func (p *Pool) Enabled() bool { return p != nil }

// Workers returns the worker count (0 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Submit schedules fn on the pool and returns its Future. If a scan
// with the same key is already queued or running, fn is dropped and
// the existing Future is returned (singleflight): pure scans with
// equal keys produce equal results, so one execution serves every
// concurrent attempt — speculative twins within a cell and colliding
// cells of a parallel sweep alike. After the pool is closed, fn runs
// inline on the caller.
func (p *Pool) Submit(key Key, fn func() (any, error)) *Future {
	p.mu.Lock()
	if f, ok := p.inflight[key]; ok {
		p.deduped++
		p.mu.Unlock()
		return f
	}
	f := &Future{done: make(chan struct{})}
	if p.closed {
		p.mu.Unlock()
		f.val, f.err = fn()
		close(f.done)
		return f
	}
	p.inflight[key] = f
	p.submitted++
	p.queue = append(p.queue, &task{key: key, fn: fn, fut: f})
	p.cond.Signal()
	p.mu.Unlock()
	return f
}

// worker pops and runs tasks until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()

		v, err := t.fn()

		p.mu.Lock()
		delete(p.inflight, t.key)
		p.completed++
		p.mu.Unlock()
		t.fut.val, t.fut.err = v, err
		close(t.fut.done)
	}
}

// Close drains the queue (queued scans still run) and stops the
// workers, blocking until they exit. Submissions after Close run
// inline on the caller, so a closed pool is still correct — just no
// longer concurrent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns lifetime submission counters: scans dispatched,
// submissions coalesced by singleflight, and scans completed.
func (p *Pool) Stats() (submitted, deduped, completed uint64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.submitted, p.deduped, p.completed
}
