package executor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilPoolDisabled(t *testing.T) {
	p := NewPool(0)
	if p != nil {
		t.Fatalf("NewPool(0) = %v, want nil", p)
	}
	if p.Enabled() {
		t.Fatal("nil pool reports Enabled")
	}
	if p.Workers() != 0 {
		t.Fatalf("nil pool Workers = %d, want 0", p.Workers())
	}
	s, d, c := p.Stats()
	if s != 0 || d != 0 || c != 0 {
		t.Fatalf("nil pool Stats = %d,%d,%d, want zeros", s, d, c)
	}
	p.Close() // must not panic
}

func TestSubmitAndWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	fut := p.Submit(Key{Source: t, Memo: "a"}, func() (any, error) { return 42, nil })
	v, err := fut.Wait()
	if err != nil || v != 42 {
		t.Fatalf("Wait = %v, %v, want 42, nil", v, err)
	}
	if !fut.Ready() {
		t.Fatal("completed future not Ready")
	}
	errFut := p.Submit(Key{Source: t, Memo: "b"}, func() (any, error) { return nil, errors.New("boom") })
	if _, err := errFut.Wait(); err == nil {
		t.Fatal("error not propagated through future")
	}
}

func TestResolved(t *testing.T) {
	f := Resolved("cached")
	if !f.Ready() {
		t.Fatal("Resolved future not Ready")
	}
	v, err := f.Wait()
	if err != nil || v != "cached" {
		t.Fatalf("Wait = %v, %v, want cached, nil", v, err)
	}
}

// TestSingleflight checks that concurrent submissions of one key share
// a single execution while the scan is in flight.
func TestSingleflight(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var runs atomic.Int64
	release := make(chan struct{})
	key := Key{Source: t, Memo: "same"}
	// First submission parks the single worker until release.
	first := p.Submit(key, func() (any, error) {
		runs.Add(1)
		<-release
		return "v", nil
	})
	for i := 0; i < 10; i++ {
		dup := p.Submit(key, func() (any, error) {
			runs.Add(1)
			return "dup", nil
		})
		if dup != first {
			t.Fatal("in-flight key did not coalesce onto the existing future")
		}
	}
	close(release)
	if v, err := first.Wait(); err != nil || v != "v" {
		t.Fatalf("Wait = %v, %v, want v, nil", v, err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("scan ran %d times, want 1", got)
	}
	sub, dedup, _ := p.Stats()
	if sub != 1 || dedup != 10 {
		t.Fatalf("Stats submitted=%d deduped=%d, want 1, 10", sub, dedup)
	}
}

func TestDistinctKeysRunIndependently(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	futs := make([]*Future, 32)
	for i := range futs {
		i := i
		futs[i] = p.Submit(Key{Source: t, Memo: fmt.Sprint(i)}, func() (any, error) { return i, nil })
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil || v != i {
			t.Fatalf("future %d = %v, %v", i, v, err)
		}
	}
	sub, _, comp := p.Stats()
	if sub != 32 || comp != 32 {
		t.Fatalf("Stats submitted=%d completed=%d, want 32, 32", sub, comp)
	}
}

func TestCloseDrainsQueueAndRunsInlineAfter(t *testing.T) {
	p := NewPool(1)
	var ran atomic.Int64
	futs := make([]*Future, 16)
	for i := range futs {
		futs[i] = p.Submit(Key{Source: t, Memo: fmt.Sprint(i)}, func() (any, error) {
			ran.Add(1)
			return nil, nil
		})
	}
	p.Close()
	for i, f := range futs {
		if !f.Ready() {
			t.Fatalf("queued scan %d not drained by Close", i)
		}
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("%d scans ran, want 16", got)
	}
	// Post-close submissions execute inline on the caller.
	late := p.Submit(Key{Source: t, Memo: "late"}, func() (any, error) { return "inline", nil })
	if !late.Ready() {
		t.Fatal("post-Close submission did not run inline")
	}
	if v, _ := late.Wait(); v != "inline" {
		t.Fatalf("post-Close value = %v", v)
	}
	p.Close() // second Close must not panic or deadlock
}

// TestConcurrentSubmitJoinClose is the -race stress test: many
// goroutines submit overlapping keys, wait on futures, and abandon some
// (simulating killed speculative attempts) while another goroutine
// closes the pool mid-stream.
func TestConcurrentSubmitJoinClose(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 200
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := Key{Source: t, Memo: fmt.Sprint(i % 50)} // force collisions
				fut := p.Submit(key, func() (any, error) { return i, nil })
				switch {
				case i%3 == 0:
					fut.Wait() // join
				case i%3 == 1:
					fut.Ready() // poll, then abandon (speculative kill)
				default:
					_ = fut // abandon outright
				}
				_ = g
			}
		}()
	}
	wg.Wait()
	p.Close()
	sub, dedup, comp := p.Stats()
	if sub != comp {
		t.Fatalf("submitted %d != completed %d after Close", sub, comp)
	}
	if sub+dedup != goroutines*perG {
		t.Fatalf("submitted+deduped = %d, want %d", sub+dedup, goroutines*perG)
	}
}
