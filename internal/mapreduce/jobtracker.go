package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/vlog"
)

// Costs models the software-side execution costs of task attempts.
// Hardware rates (disk/network bandwidth, core counts) live in
// cluster.Config; these constants cover what runs on top.
type Costs struct {
	// TaskStartupS is the per-attempt launch latency (JVM spin-up in
	// Hadoop 0.20; ~1 s).
	TaskStartupS float64
	// MapCPUPerRecordS is CPU seconds per input record (parse +
	// user map function).
	MapCPUPerRecordS float64
	// MapCPUPerByteS is additional CPU seconds per input byte.
	MapCPUPerByteS float64
	// SortCPUPerRecordS covers the shuffle-side merge sort.
	SortCPUPerRecordS float64
	// ReduceCPUPerRecordS is CPU seconds per reduce input record.
	ReduceCPUPerRecordS float64
	// IndexProbeBytes is the simulated I/O charged per match-admitting
	// sub-block under the indexed input path (one clustered-index probe
	// per block), on top of the matching records themselves.
	IndexProbeBytes float64
}

// DefaultCosts returns constants calibrated so a 2012-era node spends
// a few seconds per ~90 MB split, matching the paper's cluster scale.
func DefaultCosts() Costs {
	return Costs{
		TaskStartupS:        1.0,
		MapCPUPerRecordS:    2e-6,
		MapCPUPerByteS:      0,
		SortCPUPerRecordS:   3e-6,
		ReduceCPUPerRecordS: 2e-6,
		IndexProbeBytes:     4096,
	}
}

// Config tunes the runtime.
type Config struct {
	// HeartbeatIntervalS is the TaskTracker heartbeat period.
	HeartbeatIntervalS float64
	// MapsPerHeartbeat bounds map assignments per heartbeat (Hadoop
	// 0.20 assigned one; task completions trigger out-of-band
	// scheduling opportunities as well).
	MapsPerHeartbeat int
	// ReducesPerHeartbeat bounds reduce assignments per heartbeat.
	ReducesPerHeartbeat int
	// MaxTaskAttempts fails the job after this many attempts of one
	// task (Hadoop default 4).
	MaxTaskAttempts int
	// Costs are the task execution cost constants.
	Costs Costs
	// FailureInjector, when set, is consulted as each map attempt
	// finishes; returning true fails the attempt. Tests use it to
	// exercise re-execution.
	FailureInjector func(j *Job, t *MapTask) bool
	// SpeculativeExecution enables backup attempts for straggling map
	// tasks (Hadoop's speculative execution): when a job has no pending
	// maps and a lone attempt has run longer than SpeculativeSlowdown
	// times the job's median map duration, a second attempt races it.
	SpeculativeExecution bool
	// SpeculativeSlowdown is the straggler threshold multiplier
	// (default 2.0).
	SpeculativeSlowdown float64
	// SpeculativeMinCompleted is the minimum completed maps before the
	// median is trusted (default 3).
	SpeculativeMinCompleted int
	// Trace configures the tracing/metrics subsystem. Zero value means
	// disabled: the runtime keeps a nil *trace.Tracer and every
	// instrumentation site reduces to one nil check.
	Trace trace.Config
	// MapOutputCache, when non-nil, memoises map outputs for jobs that
	// declare a MemoKey (see JobSpec.MemoKey). The cache may be shared
	// across JobTrackers; the experiment harness shares one across all
	// cells of a sweep, where policies change scheduling but not
	// computation. Virtual-time costs are charged either way, so a hit
	// saves real wall-clock without perturbing simulated results.
	MapOutputCache *MapOutputCache
	// ResidentStore, when non-nil, enables the memory engine mode: jobs
	// that declare a MemoKey keep their map outputs resident in the
	// store, already partitioned and sorted, across the jobs of a
	// session (see ResidentStore). Like the MapOutputCache it only saves
	// real wall-clock and allocations — virtual time and output are
	// byte-identical to a nil-store runtime. When set and MapOutputCache
	// is nil, the store's own memo cache is used.
	ResidentStore *ResidentStore
	// ScanExecutor, when non-nil, runs the real record scans of pure
	// map tasks (jobs declaring a MemoKey) on a worker pool off the
	// simulator thread: the scan is submitted when an attempt's phase
	// chain starts and joined when its completion event fires, so real
	// compute overlaps the simulation without perturbing virtual time
	// or results (see scan.go for the determinism contract). The pool
	// may be shared across JobTrackers; impure jobs always execute
	// inline. nil disables asynchronous scans.
	ScanExecutor *executor.Pool
	// InputPath is the runtime's default input-path mode (see the
	// InputPath* constants): how map tasks read their splits for jobs
	// declaring a FilterFingerprint. Empty or InputPathFull is the seed
	// behaviour; a job conf's dynamic.input.path overrides it per job.
	InputPath string
	// Logger receives structured lifecycle events (job submit/finish,
	// policy decisions, query execution) stamped with the virtual
	// clock; see internal/vlog for the attribute contract. nil means
	// vlog.Nop(): nothing is emitted and disabled-level checks cost a
	// single interface call. Library code must log through this rather
	// than writing to stdout/stderr.
	Logger *slog.Logger
}

// DefaultConfig returns the standard runtime configuration.
func DefaultConfig() Config {
	return Config{
		HeartbeatIntervalS:      1.0,
		MapsPerHeartbeat:        1,
		ReducesPerHeartbeat:     1,
		MaxTaskAttempts:         4,
		Costs:                   DefaultCosts(),
		SpeculativeSlowdown:     2.0,
		SpeculativeMinCompleted: 3,
	}
}

// TaskTracker is the per-node agent: it owns the node's map/reduce
// slots and heartbeats to the JobTracker for work.
type TaskTracker struct {
	jt          *JobTracker
	node        *cluster.Node
	mapSlots    int
	reduceSlots int
	mapUsed     int
	reduceUsed  int

	// Per-node occupied-slot-second integrals (the node-level analogue
	// of JobTracker.mapSlotIntegral), accrued lazily on every slot
	// change so the obs sampler can derive per-node occupancy.
	mapSlotIntegral    float64
	reduceSlotIntegral float64
	lastSlotChange     float64
}

// NodeID returns the tracker's node id.
func (tt *TaskTracker) NodeID() int { return tt.node.ID }

// MapSlots returns the node's configured map slot count.
func (tt *TaskTracker) MapSlots() int { return tt.mapSlots }

// ReduceSlots returns the node's configured reduce slot count.
func (tt *TaskTracker) ReduceSlots() int { return tt.reduceSlots }

// MapSlotsUsed returns currently occupied map slots.
func (tt *TaskTracker) MapSlotsUsed() int { return tt.mapUsed }

// ReduceSlotsUsed returns currently occupied reduce slots.
func (tt *TaskTracker) ReduceSlotsUsed() int { return tt.reduceUsed }

// FreeMapSlots returns currently unoccupied map slots.
func (tt *TaskTracker) FreeMapSlots() int { return tt.mapSlots - tt.mapUsed }

// FreeReduceSlots returns currently unoccupied reduce slots.
func (tt *TaskTracker) FreeReduceSlots() int { return tt.reduceSlots - tt.reduceUsed }

// accrueSlots folds elapsed time into the node's slot integrals.
func (tt *TaskTracker) accrueSlots() {
	now := tt.jt.eng.Now()
	dt := now - tt.lastSlotChange
	tt.mapSlotIntegral += float64(tt.mapUsed) * dt
	tt.reduceSlotIntegral += float64(tt.reduceUsed) * dt
	tt.lastSlotChange = now
}

func (tt *TaskTracker) changeMapSlots(delta int) {
	tt.accrueSlots()
	tt.mapUsed += delta
}

func (tt *TaskTracker) changeReduceSlots(delta int) {
	tt.accrueSlots()
	tt.reduceUsed += delta
}

// MapSlotIntegral returns the node's accumulated occupied-map-slot
// seconds up to now.
func (tt *TaskTracker) MapSlotIntegral() float64 {
	tt.accrueSlots()
	return tt.mapSlotIntegral
}

// ReduceSlotIntegral returns the node's accumulated occupied-reduce-slot
// seconds up to now.
func (tt *TaskTracker) ReduceSlotIntegral() float64 {
	tt.accrueSlots()
	return tt.reduceSlotIntegral
}

// JobTracker is the server-side daemon managing job lifecycles: it
// accepts submissions, hands splits to trackers via the pluggable
// TaskScheduler on each heartbeat, and tracks slot usage.
type JobTracker struct {
	eng      *sim.Engine
	cluster  *cluster.Cluster
	cfg      Config
	sched    TaskScheduler
	trackers []*TaskTracker

	jobs      []*Job
	nextJobID int

	occupiedMapSlots    int
	occupiedReduceSlots int
	// mapSlotIntegral accumulates occupied-map-slot-seconds for the
	// §V-F slot-occupancy metric.
	mapSlotIntegral float64
	lastSlotChange  float64

	totalLocalMaps    int64
	totalNonLocalMaps int64

	listeners []func(TaskEvent)

	// tracer is nil unless cfg.Trace.Enabled; *trace.Tracer methods are
	// nil-safe, so instrumentation sites call it unconditionally.
	tracer *trace.Tracer

	// logger is never nil (vlog.Nop() when unconfigured).
	logger *slog.Logger

	started bool
}

// NewJobTracker builds the tracker and its per-node TaskTrackers.
// Heartbeats begin on the first submission.
func NewJobTracker(c *cluster.Cluster, cfg Config, sched TaskScheduler) *JobTracker {
	if cfg.HeartbeatIntervalS <= 0 {
		panic("mapreduce: HeartbeatIntervalS must be positive")
	}
	if cfg.MaxTaskAttempts <= 0 {
		panic("mapreduce: MaxTaskAttempts must be positive")
	}
	if sched == nil {
		sched = NewFIFOScheduler()
	}
	if cfg.ResidentStore != nil && cfg.MapOutputCache == nil {
		cfg.MapOutputCache = cfg.ResidentStore.Memo()
	}
	jt := &JobTracker{eng: c.Eng, cluster: c, cfg: cfg, sched: sched,
		tracer: trace.New(cfg.Trace), logger: vlog.Or(cfg.Logger)}
	for _, n := range c.Nodes {
		jt.trackers = append(jt.trackers, &TaskTracker{
			jt:          jt,
			node:        n,
			mapSlots:    c.Cfg.MapSlotsPerNode,
			reduceSlots: c.Cfg.ReduceSlotsPerNode,
		})
	}
	return jt
}

// Engine returns the virtual clock driving the tracker.
func (jt *JobTracker) Engine() *sim.Engine { return jt.eng }

// Cluster returns the hardware.
func (jt *JobTracker) Cluster() *cluster.Cluster { return jt.cluster }

// Scheduler returns the active task scheduler.
func (jt *JobTracker) Scheduler() TaskScheduler { return jt.sched }

// Jobs returns all submitted jobs in submission order.
func (jt *JobTracker) Jobs() []*Job { return jt.jobs }

// TaskTrackers returns the per-node trackers in node-id order, for
// observability consumers (the obs sampler reads slot occupancy off
// them). The slice is the tracker's own: callers must not mutate it.
func (jt *JobTracker) TaskTrackers() []*TaskTracker { return jt.trackers }

// Tracer returns the runtime's tracer, nil when tracing is disabled.
// trace.Tracer methods are nil-safe, so callers may use the result
// unconditionally; gate on Tracer().Enabled() to skip whole blocks.
func (jt *JobTracker) Tracer() *trace.Tracer { return jt.tracer }

// Logger returns the runtime's structured logger (never nil; the
// discard logger when unconfigured). Components layered on the
// tracker (Input Provider clients, Hive sessions) log through it so
// their records share one virtual-clock stream.
func (jt *JobTracker) Logger() *slog.Logger { return jt.logger }

// logEnabled reports whether the logger accepts records at level, so
// hot paths can skip attribute construction entirely.
func (jt *JobTracker) logEnabled(level slog.Level) bool {
	return jt.logger.Enabled(context.Background(), level)
}

// start launches staggered periodic heartbeats.
func (jt *JobTracker) start() {
	if jt.started {
		return
	}
	jt.started = true
	n := len(jt.trackers)
	for i, tt := range jt.trackers {
		tt := tt
		offset := jt.cfg.HeartbeatIntervalS * float64(i+1) / float64(n)
		jt.eng.After(offset, func() { jt.heartbeat(tt) })
	}
	jt.startTelemetry()
}

func (jt *JobTracker) heartbeat(tt *TaskTracker) {
	if jt.tracer.Enabled() {
		jt.tracer.Instant(trace.EventHeartbeat, trace.CatNode, jt.eng.Now(), -1, -1, tt.node.ID)
		jt.tracer.Inc(trace.CounterHeartbeats, 1)
	}
	jt.assign(tt)
	jt.eng.After(jt.cfg.HeartbeatIntervalS, func() { jt.heartbeat(tt) })
}

// assign is one scheduling opportunity for a tracker: consult the
// scheduler for up to MapsPerHeartbeat maps and ReducesPerHeartbeat
// reduces, then consider a speculative backup attempt for a straggler.
func (jt *JobTracker) assign(tt *TaskTracker) {
	if n := min(tt.FreeMapSlots(), jt.cfg.MapsPerHeartbeat); n > 0 {
		for _, t := range jt.sched.AssignMaps(jt, tt, n) {
			jt.launchMap(tt, t)
		}
	}
	if n := min(tt.FreeReduceSlots(), jt.cfg.ReducesPerHeartbeat); n > 0 {
		for _, t := range jt.sched.AssignReduces(jt, tt, n) {
			jt.launchReduce(tt, t)
		}
	}
	if jt.cfg.SpeculativeExecution && tt.FreeMapSlots() > 0 {
		if t := jt.speculativeCandidate(tt); t != nil {
			jt.launchSpeculative(tt, t)
		}
	}
}

// speculativeCandidate finds a straggling map task worth backing up on
// this tracker: its job has nothing pending, the task has exactly one
// attempt on a *different* node, and that attempt has outlived the
// straggler threshold.
func (jt *JobTracker) speculativeCandidate(tt *TaskTracker) *MapTask {
	now := jt.eng.Now()
	slowdown := jt.cfg.SpeculativeSlowdown
	if slowdown <= 0 {
		slowdown = 2.0
	}
	minDone := jt.cfg.SpeculativeMinCompleted
	if minDone <= 0 {
		minDone = 3
	}
	for _, j := range jt.jobs {
		if j.Done() || j.state != StateMapPhase || len(j.pendingMaps) > 0 {
			continue
		}
		med, ok := j.medianMapDuration(minDone)
		if !ok {
			continue
		}
		for t := range j.runningMaps {
			if t.completed || len(t.running) != 1 {
				continue
			}
			att := t.running[0]
			if att.tt == tt {
				continue // back up on a different node
			}
			if now-att.startTime > slowdown*med {
				return t
			}
		}
	}
	return nil
}

// Submit registers a job with its initial splits. Non-dynamic jobs are
// closed immediately (all input known up front — Hadoop's model);
// dynamic jobs stay open until EndOfInput.
func (jt *JobTracker) Submit(spec JobSpec, splits []Split) *Job {
	conf := spec.Conf
	if conf == nil {
		conf = NewJobConf()
	}
	if spec.NewMapper == nil {
		panic("mapreduce: JobSpec.NewMapper is required")
	}
	j := &Job{
		ID:             jt.nextJobID,
		Spec:           spec,
		Conf:           conf,
		Name:           conf.Get(ConfJobName, fmt.Sprintf("job-%d", jt.nextJobID)),
		User:           conf.Get(ConfUser, "default"),
		Dynamic:        conf.GetBool(ConfDynamicJob, false),
		numReduces:     int(conf.GetInt(ConfNumReduces, 1)),
		runningMaps:    make(map[*MapTask]struct{}),
		runningReduces: make(map[*ReduceTask]struct{}),
		SubmitTime:     jt.eng.Now(),
	}
	jt.nextJobID++
	if j.numReduces < 1 {
		j.numReduces = 1
	}
	j.resident = jt.cfg.ResidentStore != nil && spec.MemoKey != ""
	j.mapOutput = make([][]mapChunk, j.numReduces)
	for r := 0; r < j.numReduces; r++ {
		j.reduceTasks = append(j.reduceTasks, &ReduceTask{Job: j, Index: r, Node: -1})
	}
	jt.jobs = append(jt.jobs, j)
	jt.addSplits(j, splits)
	if !j.Dynamic {
		j.endOfInput = true
	}
	jt.start()
	jt.emit(TaskEvent{Type: EventJobSubmitted, JobID: j.ID, TaskIndex: -1, Node: -1})
	jt.tracer.Instant(trace.EventJobSubmitted, trace.CatJob, j.SubmitTime, j.ID, -1, -1)
	jt.tracer.Inc(trace.CounterJobsSubmitted, 1)
	if jt.logEnabled(slog.LevelInfo) {
		args := []any{
			slog.String(vlog.KeyComponent, "jobtracker"),
			slog.Int(vlog.KeyJob, j.ID),
			slog.String(vlog.KeyUser, j.User),
			slog.String("name", j.Name),
			slog.Bool("dynamic", j.Dynamic),
			slog.Int("initial_splits", len(splits)),
		}
		if qid := j.Conf.Get(ConfQueryID, ""); qid != "" {
			args = append(args, slog.String(vlog.KeyQueryID, qid))
		}
		jt.logger.Info("job submitted", args...)
	}
	// A job with no input and no future input can complete immediately.
	jt.maybeStartReducePhase(j)
	return j
}

// AddSplits hands additional input to a dynamic job ("input available"
// response, §III-A).
func (jt *JobTracker) AddSplits(j *Job, splits []Split) error {
	if j.Done() {
		return fmt.Errorf("mapreduce: job %d already finished", j.ID)
	}
	if j.endOfInput {
		return fmt.Errorf("mapreduce: job %d input already closed", j.ID)
	}
	jt.addSplits(j, splits)
	return nil
}

func (jt *JobTracker) addSplits(j *Job, splits []Split) {
	for _, s := range splits {
		t := &MapTask{Job: j, Index: j.scheduled, Split: s, Node: -1, enqueued: jt.eng.Now()}
		j.scheduled++
		j.pendingMaps = append(j.pendingMaps, t)
	}
}

// EndOfInput closes a dynamic job's input ("end of input" response):
// in-flight maps finish, then the reduce phase begins.
func (jt *JobTracker) EndOfInput(j *Job) error {
	if j.Done() {
		return fmt.Errorf("mapreduce: job %d already finished", j.ID)
	}
	if j.endOfInput {
		return nil // idempotent
	}
	j.endOfInput = true
	jt.maybeStartReducePhase(j)
	return nil
}

// Retire removes a finished job from the tracker's bookkeeping and
// releases its retained output and shuffle buffers. Long-running
// workloads retire jobs after harvesting their results so that
// scheduler scans and memory stay proportional to *active* jobs.
func (jt *JobTracker) Retire(j *Job) error {
	if !j.Done() {
		return fmt.Errorf("mapreduce: cannot retire running job %d", j.ID)
	}
	for i, x := range jt.jobs {
		if x == j {
			jt.jobs = append(jt.jobs[:i], jt.jobs[i+1:]...)
			break
		}
	}
	if r, ok := jt.sched.(jobRetirer); ok {
		r.retireJob(j)
	}
	j.output = nil
	j.mapOutput = nil
	j.reduceTasks = nil
	j.pendingReduces = nil
	return nil
}

// jobRetirer lets schedulers drop per-job state at retirement.
type jobRetirer interface{ retireJob(*Job) }

// Status snapshots the job for the JobClient/Input Provider.
func (jt *JobTracker) Status(j *Job) JobStatus {
	var user map[string]int64
	if len(j.Counters.User) > 0 {
		user = make(map[string]int64, len(j.Counters.User))
		for k, v := range j.Counters.User {
			user[k] = v
		}
	}
	return JobStatus{
		UserCounters:     user,
		JobID:            j.ID,
		State:            j.state,
		ScheduledMaps:    j.scheduled,
		CompletedMaps:    j.CompletedMaps(),
		RunningMaps:      len(j.runningMaps),
		PendingMaps:      len(j.pendingMaps),
		MapInputRecords:  j.Counters.MapInputRecords,
		MapOutputRecords: j.Counters.MapOutputRecords,
		ScanBlocksRead:   j.Counters.ScanBlocksRead,
		ScanBlocksSkip:   j.Counters.ScanBlocksSkipped,
		SubmitTime:       j.SubmitTime,
		Now:              jt.eng.Now(),
	}
}

// ClusterStatus snapshots cluster capacity and load.
func (jt *JobTracker) ClusterStatus() ClusterStatus {
	queued := 0
	queuedReduces := 0
	running := 0
	for _, j := range jt.jobs {
		if !j.Done() {
			running++
			queued += len(j.pendingMaps)
			queuedReduces += len(j.pendingReduces)
		}
	}
	return ClusterStatus{
		TotalMapSlots:     jt.cluster.Cfg.TotalMapSlots(),
		OccupiedMapSlots:  jt.occupiedMapSlots,
		TotalReduceSlots:  jt.cluster.Cfg.Nodes * jt.cluster.Cfg.ReduceSlotsPerNode,
		OccupiedReduces:   jt.occupiedReduceSlots,
		RunningJobs:       running,
		QueuedMapTasks:    queued,
		QueuedReduceTasks: queuedReduces,
	}
}

// MapSlotOccupancyIntegral returns accumulated occupied-map-slot-seconds
// up to now; (Δintegral / (totalSlots·Δt)) is the §V-F "slot occupancy".
func (jt *JobTracker) MapSlotOccupancyIntegral() float64 {
	jt.accrueSlots()
	return jt.mapSlotIntegral
}

// LocalityStats returns cluster-lifetime local and non-local completed
// map counts (§V-F's "locality" metric).
func (jt *JobTracker) LocalityStats() (local, nonLocal int64) {
	return jt.totalLocalMaps, jt.totalNonLocalMaps
}

func (jt *JobTracker) accrueSlots() {
	now := jt.eng.Now()
	jt.mapSlotIntegral += float64(jt.occupiedMapSlots) * (now - jt.lastSlotChange)
	jt.lastSlotChange = now
}

func (jt *JobTracker) changeMapSlots(delta int) {
	jt.accrueSlots()
	jt.occupiedMapSlots += delta
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// partition assigns a key to a reduce partition (Hadoop's hash
// partitioner).
func partition(key string, numReduces int) int {
	if numReduces == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReduces))
}

// failJob transitions to StateFailed and discards pending work.
func (jt *JobTracker) failJob(j *Job, why string) {
	if j.Done() {
		return
	}
	mapDone := j.state == StateReducePhase
	j.state = StateFailed
	j.failure = why
	j.pendingMaps = nil
	j.pendingReduces = nil
	j.FinishTime = jt.eng.Now()
	jt.releaseResident(j)
	jt.traceJobEnd(j, trace.OutcomeFailed, mapDone)
	if jt.logEnabled(slog.LevelWarn) {
		args := []any{
			slog.String(vlog.KeyComponent, "jobtracker"),
			slog.Int(vlog.KeyJob, j.ID),
			slog.String("reason", why),
			slog.Float64("makespan_s", j.FinishTime-j.SubmitTime),
		}
		if qid := j.Conf.Get(ConfQueryID, ""); qid != "" {
			args = append(args, slog.String(vlog.KeyQueryID, qid))
		}
		jt.logger.Warn("job failed", args...)
	}
	jt.emit(TaskEvent{Type: EventJobFinished, JobID: j.ID, TaskIndex: -1, Node: -1})
	if j.Spec.OnComplete != nil {
		j.Spec.OnComplete(j)
	}
}

// maybeStartReducePhase moves the job to its reduce phase when the map
// phase is complete (§III-A: the framework does not begin the reduce
// phase until end-of-input).
func (jt *JobTracker) maybeStartReducePhase(j *Job) {
	if !j.mapPhaseComplete() {
		return
	}
	j.state = StateReducePhase
	j.MapDoneTime = jt.eng.Now()
	j.pendingReduces = append([]*ReduceTask(nil), j.reduceTasks...)
}

// traceJobEnd records the job-level spans at termination: the whole
// job, its map phase, and (when reached) its reduce phase.
func (jt *JobTracker) traceJobEnd(j *Job, outcome string, mapDone bool) {
	tr := jt.tracer
	if !tr.Enabled() {
		return
	}
	now := jt.eng.Now()
	tr.Record(trace.Span{Name: trace.SpanJob, Cat: trace.CatJob,
		Start: j.SubmitTime, End: now, Job: j.ID, Task: -1, Attempt: 0, Node: -1, Outcome: outcome})
	if mapDone {
		tr.Record(trace.Span{Name: trace.SpanMapPhase, Cat: trace.CatJob,
			Start: j.SubmitTime, End: j.MapDoneTime, Job: j.ID, Task: -1, Node: -1})
		tr.Record(trace.Span{Name: trace.SpanReducePhase, Cat: trace.CatJob,
			Start: j.MapDoneTime, End: now, Job: j.ID, Task: -1, Node: -1})
	} else {
		tr.Record(trace.Span{Name: trace.SpanMapPhase, Cat: trace.CatJob,
			Start: j.SubmitTime, End: now, Job: j.ID, Task: -1, Node: -1})
	}
	tr.Inc(trace.CounterJobsFinished, 1)
}

// releaseResident drops the job's references on resident parts once no
// further task of the job can read its shuffle state.
func (jt *JobTracker) releaseResident(j *Job) {
	if len(j.held) == 0 {
		return
	}
	jt.cfg.ResidentStore.releaseParts(j.held)
	j.held = nil
}

// HintResidency marks the splits' sources as session-hot in the
// resident store (no-op without one): the Input Provider's round loop
// calls it as GROW verdicts hand the job more splits, so the LRU
// standing of a session's working set tracks the query's growth rather
// than only completion order.
func (jt *JobTracker) HintResidency(splits []Split) {
	rs := jt.cfg.ResidentStore
	if rs == nil || len(splits) == 0 {
		return
	}
	srcs := make([]data.Source, len(splits))
	for i, s := range splits {
		srcs[i] = s.Block.Source
	}
	rs.touch(srcs)
	jt.tracer.Inc(trace.CounterResidencyHints, 1)
}

// completeJob finalises a successful job.
func (jt *JobTracker) completeJob(j *Job) {
	j.state = StateSucceeded
	j.FinishTime = jt.eng.Now()
	jt.releaseResident(j)
	jt.traceJobEnd(j, trace.OutcomeOK, true)
	if jt.logEnabled(slog.LevelInfo) {
		args := []any{
			slog.String(vlog.KeyComponent, "jobtracker"),
			slog.Int(vlog.KeyJob, j.ID),
			slog.Float64("makespan_s", j.FinishTime-j.SubmitTime),
			slog.Int("maps", j.scheduled),
			slog.Int64("map_input_records", j.Counters.MapInputRecords),
		}
		if qid := j.Conf.Get(ConfQueryID, ""); qid != "" {
			args = append(args, slog.String(vlog.KeyQueryID, qid))
		}
		jt.logger.Info("job finished", args...)
	}
	jt.emit(TaskEvent{Type: EventJobFinished, JobID: j.ID, TaskIndex: -1, Node: -1})
	// Deterministic output order: by reduce partition, then emit order
	// (already appended per-reduce in completion order).
	if j.Spec.OnComplete != nil {
		j.Spec.OnComplete(j)
	}
}

// sortPairs concatenates one partition's chunks in producing-task
// order and sorts by key so reduce input is deterministic.
func sortPairs(chunks []mapChunk) []KeyValue {
	var total int
	for _, c := range chunks {
		total += len(c.pairs)
	}
	pairs := make([]KeyValue, 0, total)
	for _, c := range chunks {
		pairs = append(pairs, c.pairs...)
	}
	// Stable sort by key: Hadoop's merge groups equal keys while
	// preserving chunk order within a key.
	sortPairsStable(pairs)
	return pairs
}
