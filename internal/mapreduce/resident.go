package mapreduce

import (
	"sync"

	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
)

// ResidentStore is the memory engine mode's session-scoped state (the
// M3R idea applied to this runtime): it promotes the per-lookup
// MapOutputCache memo into a store of *partition-stable* map outputs
// that stay resident across the jobs of a session. Each entry keeps one
// split's map output already partitioned for a given reduce count, with
// every partition's run stably sorted by key, so a later job over the
// same (source, MemoKey, numReduces) skips the partition copy at map
// completion and the shuffle-side sort at reduce time — only the
// *newly grabbed* splits of a GROW round pay those costs (the
// delta-shuffle). The store also pins the DFS blocks behind resident
// splits so generator-backed sources keep their materialised match
// records hot for the session.
//
// Determinism contract (same discipline as the MapOutputCache and the
// scan executor): the store changes real wall-clock and allocations
// only. Virtual-time charges — split I/O, map CPU, shuffle bytes, sort
// CPU — are computed from split metadata and chunk byte counts that are
// identical whether a part was resident or rebuilt, so the simulated
// timeline and the query output are byte-identical to baseline mode.
// The reduce-side equivalence is the classic stable-merge identity:
// a stable key sort of chunks concatenated in completion order equals
// the k-way merge of the per-chunk stably-sorted runs with ties broken
// by chunk position (see mergeSortedChunks).
//
// Resident parts are immutable once admitted and may be shared by any
// number of in-flight jobs (and by JobTrackers sharing the store, as a
// sweep's cells do); sharing is refcounted so the bounded-memory
// eviction policy never reclaims a part a live job still references.
// Eviction drops the store's reference only — jobs holding the part
// keep it alive, and a future job simply rebuilds it — so capping
// resident bytes trades wall-clock, never correctness.
//
// The store is safe for concurrent use by JobTrackers on separate
// goroutines.
type ResidentStore struct {
	mu    sync.Mutex
	memo  *MapOutputCache
	parts map[residentKey]*residentPart
	// pins counts resident parts per DFS block; a block is pinned while
	// any part over it is resident and unpinned when the last is evicted
	// or purged.
	pins map[*dfs.Block]int
	// clock is a logical LRU tick bumped on every touch.
	clock uint64
	// residentBytes is the encoded size of all parts currently in the
	// map (the same byte metric the shuffle charges, so it is
	// deterministic and pinnable by golden tables).
	residentBytes int64
	pinnedBytes   int64
	// maxBytes bounds residentBytes; 0 means unbounded. Parts still
	// referenced by live jobs are never evicted (their memory could not
	// be reclaimed anyway), so the bound may be transiently exceeded by
	// the in-flight working set.
	maxBytes int64
	// sessions is the retain count; Release at zero purges everything.
	sessions int
	// liveRefs is the sum of per-part refcounts, for leak tests.
	liveRefs int

	hits, misses, stores, evictions uint64
}

// residentKey identifies one split's partitioned output layout.
type residentKey struct {
	src     data.Source
	job     string // JobSpec.MemoKey
	reduces int
}

// residentChunk is one reduce partition's stably-sorted run of a
// resident part.
type residentChunk struct {
	pairs []KeyValue
	bytes int64
}

// residentPart is one split's map output, partitioned by reduce count
// with each partition's pairs stably sorted by key. It also carries the
// per-split counter contributions a map completion reports, so a hit
// needs neither the collector nor a rescan.
type residentPart struct {
	key     residentKey
	block   *dfs.Block
	chunks  []residentChunk
	records int64 // map output records (Collector.Len())
	bytes   int64 // encoded map output bytes (Collector.Bytes())
	user    map[string]int64

	refs     int
	lastUse  uint64
	resident bool // still in the store's map
}

// ResidentStats snapshots the store for observability and tests.
type ResidentStats struct {
	Hits, Misses, Stores, Evictions uint64
	Parts                           int
	ResidentBytes                   int64
	PinnedBytes                     int64
	PinnedBlocks                    int
	LiveRefs                        int
	Sessions                        int
}

// NewResidentStore returns an empty store wrapping the given memo cache
// (one is created when nil) with residentBytes bounded by maxBytes
// (0 = unbounded).
func NewResidentStore(memo *MapOutputCache, maxBytes int64) *ResidentStore {
	if memo == nil {
		memo = NewMapOutputCache()
	}
	return &ResidentStore{
		memo:     memo,
		parts:    make(map[residentKey]*residentPart),
		pins:     make(map[*dfs.Block]int),
		maxBytes: maxBytes,
	}
}

// Memo returns the raw-collector memo cache behind the store; runtimes
// configured with the store use it as their MapOutputCache so the scan
// executor's singleflight and the resident parts share one purity
// domain.
func (rs *ResidentStore) Memo() *MapOutputCache { return rs.memo }

// Retain registers a session using the store.
func (rs *ResidentStore) Retain() {
	rs.mu.Lock()
	rs.sessions++
	rs.mu.Unlock()
}

// Release drops one session's claim; when the last session detaches the
// store purges every resident part and unpins every block. Idempotent
// beyond zero.
func (rs *ResidentStore) Release() {
	rs.mu.Lock()
	if rs.sessions > 0 {
		rs.sessions--
	}
	last := rs.sessions == 0
	rs.mu.Unlock()
	if last {
		rs.Purge()
	}
}

// Purge drops every resident part and unpins every block. In-flight
// jobs holding parts keep them alive through their own references.
func (rs *ResidentStore) Purge() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for k, p := range rs.parts {
		p.resident = false
		delete(rs.parts, k)
	}
	rs.residentBytes = 0
	for b := range rs.pins {
		rs.unpinBlockLocked(b)
	}
}

// Stats returns a snapshot of the store's counters and levels.
func (rs *ResidentStore) Stats() ResidentStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return ResidentStats{
		Hits: rs.hits, Misses: rs.misses, Stores: rs.stores, Evictions: rs.evictions,
		Parts:         len(rs.parts),
		ResidentBytes: rs.residentBytes,
		PinnedBytes:   rs.pinnedBytes,
		PinnedBlocks:  len(rs.pins),
		LiveRefs:      rs.liveRefs,
		Sessions:      rs.sessions,
	}
}

// ResidentBytes returns the encoded size of all resident parts.
func (rs *ResidentStore) ResidentBytes() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.residentBytes
}

// Len returns the number of resident parts.
func (rs *ResidentStore) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.parts)
}

// acquire looks up the resident part for a completing map task and, on
// a hit, takes a job reference on it. The caller must pair a successful
// acquire with a release (releaseParts).
func (rs *ResidentStore) acquire(src data.Source, job string, reduces int) *residentPart {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	p, ok := rs.parts[residentKey{src, job, reduces}]
	if !ok {
		rs.misses++
		return nil
	}
	rs.hits++
	rs.clock++
	p.lastUse = rs.clock
	p.refs++
	rs.liveRefs++
	return p
}

// admit inserts a freshly built part, taking a job reference on the
// returned part, and reports how many parts the bounded-memory policy
// evicted to make room. When a concurrent runtime admitted an identical
// part first, the existing one wins (its content is byte-identical by
// the purity contract) and the candidate is discarded.
func (rs *ResidentStore) admit(p *residentPart) (*residentPart, int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if prev, ok := rs.parts[p.key]; ok {
		rs.clock++
		prev.lastUse = rs.clock
		prev.refs++
		rs.liveRefs++
		return prev, 0
	}
	rs.clock++
	p.lastUse = rs.clock
	p.refs = 1
	p.resident = true
	rs.parts[p.key] = p
	rs.residentBytes += p.bytes
	rs.liveRefs++
	rs.stores++
	if p.block != nil {
		if rs.pins[p.block] == 0 {
			p.block.Pin()
			rs.pinnedBytes += p.block.SizeBytes()
		}
		rs.pins[p.block]++
	}
	return p, rs.evictLocked()
}

// releaseParts drops a job's references; parts stay resident for the
// session (that is the point) — only eviction or purge reclaims them.
func (rs *ResidentStore) releaseParts(parts []*residentPart) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, p := range parts {
		if p.refs > 0 {
			p.refs--
			rs.liveRefs--
		}
	}
}

// touch bumps the LRU standing of every resident part over the given
// sources — the Input Provider's residency hint that a session's round
// loop is still growing over them.
func (rs *ResidentStore) touch(srcs []data.Source) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	hot := make(map[data.Source]struct{}, len(srcs))
	for _, s := range srcs {
		hot[s] = struct{}{}
	}
	rs.clock++
	for k, p := range rs.parts {
		if _, ok := hot[k.src]; ok {
			p.lastUse = rs.clock
		}
	}
}

// evictLocked reclaims least-recently-used unreferenced parts until
// residentBytes fits maxBytes, returning the eviction count. Caller
// holds rs.mu.
func (rs *ResidentStore) evictLocked() (evicted int) {
	if rs.maxBytes <= 0 {
		return 0
	}
	for rs.residentBytes > rs.maxBytes {
		var victim *residentPart
		for _, p := range rs.parts {
			if p.refs > 0 {
				continue
			}
			if victim == nil || p.lastUse < victim.lastUse {
				victim = p
			}
		}
		if victim == nil {
			return evicted // everything left is referenced by live jobs
		}
		victim.resident = false
		delete(rs.parts, victim.key)
		rs.residentBytes -= victim.bytes
		rs.evictions++
		evicted++
		if b := victim.block; b != nil {
			rs.pins[b]--
			if rs.pins[b] == 0 {
				rs.unpinBlockLocked(b)
			}
		}
	}
	return evicted
}

// unpinBlockLocked unpins a block and drops its accounting entry.
// Caller holds rs.mu.
func (rs *ResidentStore) unpinBlockLocked(b *dfs.Block) {
	rs.pinnedBytes -= b.SizeBytes()
	delete(rs.pins, b)
	b.Unpin()
}

// newResidentPart partitions a completed map task's output for the
// job's reduce count and stably sorts each partition's run, taking
// ownership of the byPart chunk arrays the caller built (the caller
// appends the same — now sorted — arrays to its own shuffle state, so
// the job and the store share one copy).
func newResidentPart(key residentKey, block *dfs.Block, byPart []mapChunk, out *Collector) *residentPart {
	p := &residentPart{
		key:     key,
		block:   block,
		chunks:  make([]residentChunk, len(byPart)),
		records: int64(out.Len()),
		bytes:   out.Bytes(),
	}
	for i := range byPart {
		sortPairsStable(byPart[i].pairs)
		p.chunks[i] = residentChunk{pairs: byPart[i].pairs, bytes: byPart[i].bytes}
	}
	if uc := out.UserCounters(); len(uc) > 0 {
		p.user = make(map[string]int64, len(uc))
		for k, v := range uc {
			p.user[k] = v
		}
	}
	return p
}

// mergeSortedChunks merges one partition's stably-sorted chunk runs
// into a single key-sorted slice with exact preallocation. Ties across
// chunks resolve to the lower chunk position, which together with the
// per-run stability reproduces exactly what sortPairs (stable sort of
// the concatenation in chunk order) would produce — without the O(n
// log n) sort on the reduce hot path. The single-key case (the paper's
// sampling jobs: every pair under DummyKey) degenerates to a straight
// concatenation.
func mergeSortedChunks(chunks []mapChunk, total int64) []KeyValue {
	pairs := make([]KeyValue, 0, total)
	// Fast path: successive chunk key ranges already in order (always
	// true when every key is equal), so concatenation is the merge.
	ordered := true
	for i := 1; i < len(chunks); i++ {
		prev := chunks[i-1].pairs
		cur := chunks[i].pairs
		if prev[len(prev)-1].Key > cur[0].Key {
			ordered = false
			break
		}
	}
	if ordered {
		for _, c := range chunks {
			pairs = append(pairs, c.pairs...)
		}
		return pairs
	}
	// General k-way merge on a binary min-heap of chunk heads, O(n log
	// k). Ordering is (key, chunk position): ties resolve to the lower
	// chunk, preserving stability.
	type head struct {
		chunk int
		idx   int
	}
	heap := make([]head, 0, len(chunks))
	less := func(a, b head) bool {
		ka, kb := chunks[a.chunk].pairs[a.idx].Key, chunks[b.chunk].pairs[b.idx].Key
		if ka != kb {
			return ka < kb
		}
		return a.chunk < b.chunk
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			if r := l + 1; r < len(heap) && less(heap[r], heap[l]) {
				l = r
			}
			if !less(heap[l], heap[i]) {
				return
			}
			heap[i], heap[l] = heap[l], heap[i]
			i = l
		}
	}
	for c := range chunks {
		if len(chunks[c].pairs) > 0 {
			heap = append(heap, head{chunk: c})
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 && int64(len(pairs)) < total {
		top := heap[0]
		run := chunks[top.chunk].pairs
		// Gallop: drain the winning chunk while its next key still beats
		// every other head (only the runner-up matters in a binary heap).
		stop := len(run)
		if len(heap) > 1 {
			next := heap[1]
			if len(heap) > 2 && less(heap[2], next) {
				next = heap[2]
			}
			nk := chunks[next.chunk].pairs[next.idx].Key
			for i := top.idx; i < stop; i++ {
				k := run[i].Key
				if k > nk || (k == nk && top.chunk > next.chunk) {
					stop = i
					break
				}
			}
		}
		pairs = append(pairs, run[top.idx:stop]...)
		if stop < len(run) {
			heap[0].idx = stop
			siftDown(0)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(0)
			}
		}
	}
	return pairs
}
