package mapreduce

import (
	"fmt"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/sim"
)

// newScanRig builds a testRig whose JobTracker runs pure scans on the
// given pool (nil = inline).
func newScanRig(t *testing.T, pool *executor.Pool) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := DefaultConfig()
	cfg.ScanExecutor = pool
	return &testRig{eng: eng, cl: cl, fs: dfs.New(cl), jt: NewJobTracker(cl, cfg, nil)}
}

// scanSpec is a pure (MemoKey-declaring) job spread over several
// reduce partitions, so both the executor join path and the byPart
// partitioning run.
func scanSpec(memoKey string) JobSpec {
	conf := NewJobConf()
	conf.SetInt(ConfNumReduces, 4)
	return JobSpec{
		Conf:       conf,
		NewMapper:  func(*JobConf) Mapper { return countMapper{} },
		NewReducer: func(*JobConf) Reducer { return IdentityReducer },
		MemoKey:    memoKey,
	}
}

// jobFingerprint flattens a job's observable result for comparison:
// every output pair in order plus the counters the experiments report.
// Virtual response time is compared separately where it is expected to
// match: two jobs on one rig submit at different heartbeat phases, so
// only same-submission-time runs have identical timings.
func jobFingerprint(t *testing.T, j *Job) string {
	t.Helper()
	s := fmt.Sprintf("state=%v in=%d out=%d maps=%d\n",
		j.State(), j.Counters.MapInputRecords,
		j.Counters.MapOutputRecords, j.Counters.CompletedMaps)
	for _, kv := range j.Output() {
		s += fmt.Sprintf("%s=%s,%s\n", kv.Key,
			kv.Value.MustGet("K").String(), kv.Value.MustGet("V").String())
	}
	return s
}

// TestScanExecutorOutputIdentical runs the same pure job inline and on
// 1- and 8-worker pools: outputs, counters and virtual time must be
// byte-identical — the executor may only change wall-clock time.
func TestScanExecutorOutputIdentical(t *testing.T) {
	var prints []string
	for _, workers := range []int{0, 1, 8} {
		pool := executor.NewPool(workers)
		r := newScanRig(t, pool)
		f := r.makeFile(t, "in", 8, 100)
		job := r.jt.Submit(scanSpec("scan|identical"), SplitsForFile(f))
		if !RunUntilDone(r.eng, job, 1e6) || job.State() != StateSucceeded {
			t.Fatalf("workers=%d: state=%v failure=%q", workers, job.State(), job.Failure())
		}
		pool.Close()
		prints = append(prints, fmt.Sprintf("rt=%v\n%s", job.ResponseTime(), jobFingerprint(t, job)))
	}
	if prints[0] != prints[1] || prints[0] != prints[2] {
		t.Fatalf("executor changed observable output:\ninline:\n%s\n1 worker:\n%s\n8 workers:\n%s",
			prints[0], prints[1], prints[2])
	}
}

// TestScanPurityGate checks the opt-in: jobs without a MemoKey never
// enter the pool (their mappers may close over mutable state), while a
// MemoKey-declaring job over the same splits does.
func TestScanPurityGate(t *testing.T) {
	pool := executor.NewPool(2)
	defer pool.Close()
	r := newScanRig(t, pool)
	f := r.makeFile(t, "in", 8, 50)

	impure := r.jt.Submit(scanSpec(""), SplitsForFile(f))
	if !RunUntilDone(r.eng, impure, 1e6) || impure.State() != StateSucceeded {
		t.Fatalf("impure job: state=%v", impure.State())
	}
	if sub, _, _ := pool.Stats(); sub != 0 {
		t.Fatalf("impure job entered the pool: %d scans submitted", sub)
	}

	pure := r.jt.Submit(scanSpec("scan|gate"), SplitsForFile(f))
	if !RunUntilDone(r.eng, pure, 1e6) || pure.State() != StateSucceeded {
		t.Fatalf("pure job: state=%v", pure.State())
	}
	if sub, _, _ := pool.Stats(); sub != 8 {
		t.Fatalf("pure job submitted %d scans, want 8", sub)
	}
	if len(impure.Output()) != len(pure.Output()) {
		t.Fatalf("gate changed output: %d vs %d pairs", len(impure.Output()), len(pure.Output()))
	}
}

// TestScanExecutorMemoised checks the cache sits behind the executor:
// a second identical job joins resolved futures without resubmitting.
func TestScanExecutorMemoised(t *testing.T) {
	pool := executor.NewPool(2)
	defer pool.Close()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := DefaultConfig()
	cfg.ScanExecutor = pool
	cfg.MapOutputCache = NewMapOutputCache()
	r := &testRig{eng: eng, cl: cl, fs: dfs.New(cl), jt: NewJobTracker(cl, cfg, nil)}
	f := r.makeFile(t, "in", 8, 50)

	j1 := r.jt.Submit(scanSpec("scan|memo"), SplitsForFile(f))
	if !RunUntilDone(r.eng, j1, 1e6) || j1.State() != StateSucceeded {
		t.Fatalf("job1: state=%v", j1.State())
	}
	sub1, _, _ := pool.Stats()
	if sub1 != 8 {
		t.Fatalf("job1 submitted %d scans, want 8", sub1)
	}
	j2 := r.jt.Submit(scanSpec("scan|memo"), SplitsForFile(f))
	if !RunUntilDone(r.eng, j2, 1e6) || j2.State() != StateSucceeded {
		t.Fatalf("job2: state=%v", j2.State())
	}
	if sub2, _, _ := pool.Stats(); sub2 != sub1 {
		t.Fatalf("memoised job resubmitted scans: %d -> %d", sub1, sub2)
	}
	if jobFingerprint(t, j1) != jobFingerprint(t, j2) {
		t.Fatal("cache hit changed observable output")
	}
}

// scanStragglerRig is stragglerRig with a MemoKey-declaring spec and a
// scan-executor pool, so speculative twin attempts race through the
// executor and losing attempts abandon in-flight futures. Run under
// -race.
func scanStragglerRig(t *testing.T, pool *executor.Pool) (*sim.Engine, *Job) {
	t.Helper()
	cfg := cluster.PaperConfig()
	cfg.NodeSpeedFactors = make([]float64, cfg.Nodes)
	for i := range cfg.NodeSpeedFactors {
		cfg.NodeSpeedFactors[i] = 1
	}
	cfg.NodeSpeedFactors[0] = 0.05
	eng := sim.NewEngine()
	cl := cluster.New(eng, cfg)
	fs := dfs.New(cl)
	schema := data.NewSchema("V")
	var srcs []data.Source
	for b := 0; b < 40; b++ {
		recs := make([]data.Record, 5000)
		for i := range recs {
			recs[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, recs))
	}
	f, err := fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultConfig()
	rc.SpeculativeExecution = true
	rc.Costs.MapCPUPerRecordS = 2e-3
	rc.ScanExecutor = pool
	jt := NewJobTracker(cl, rc, nil)
	job := jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(data.Record, *Collector) error { return nil })
		},
		MemoKey: "scan|straggler",
	}, SplitsForFile(f))
	return eng, job
}

// TestScanExecutorWithSpeculation drives speculative kills mid-scan
// through the pool: killed attempts abandon their futures
// (singleflight shares the scan with the surviving twin) and the job's
// virtual outcome is identical to the inline run.
func TestScanExecutorWithSpeculation(t *testing.T) {
	engInline, jobInline := scanStragglerRig(t, nil)
	if !RunUntilDone(engInline, jobInline, 1e7) {
		t.Fatal("inline job stuck")
	}
	pool := executor.NewPool(4)
	defer pool.Close()
	engPool, jobPool := scanStragglerRig(t, pool)
	if !RunUntilDone(engPool, jobPool, 1e7) {
		t.Fatal("pooled job stuck")
	}
	if jobPool.State() != StateSucceeded {
		t.Fatalf("state = %v", jobPool.State())
	}
	if jobPool.Counters.SpeculativeLaunches == 0 || jobPool.Counters.KilledAttempts == 0 {
		t.Fatalf("speculation did not race under the pool: %+v", jobPool.Counters)
	}
	if jobPool.Counters.CompletedMaps != 40 || jobPool.Counters.MapInputRecords != 200_000 {
		t.Fatalf("counters double-counted: %+v", jobPool.Counters)
	}
	if jobPool.ResponseTime() != jobInline.ResponseTime() {
		t.Fatalf("executor changed virtual time under speculation: %v vs %v",
			jobPool.ResponseTime(), jobInline.ResponseTime())
	}
}
