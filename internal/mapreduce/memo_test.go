package mapreduce

import (
	"sync/atomic"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// newMemoRig builds a testRig whose JobTracker shares the given cache.
func newMemoRig(t *testing.T, cache *MapOutputCache) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := DefaultConfig()
	cfg.MapOutputCache = cache
	return &testRig{eng: eng, cl: cl, fs: dfs.New(cl), jt: NewJobTracker(cl, cfg, nil)}
}

// makeSrcs builds sources usable across rigs: the cache keys on source
// identity, so cross-rig sharing (as the experiment dsCache provides)
// requires the same source values in every rig's DFS.
func makeSrcs(blocks, recsEach int) []data.Source {
	var srcs []data.Source
	v := int64(0)
	for b := 0; b < blocks; b++ {
		recs := make([]data.Record, recsEach)
		for i := range recs {
			recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(v), data.Int(v * 10)})
			v++
		}
		srcs = append(srcs, data.NewSliceSource(kvSchema, recs))
	}
	return srcs
}

// countingSpec returns a dummy-key JobSpec whose real mapper
// constructions are counted (a memo hit skips construction entirely).
func countingSpec(memoKey string, execs *atomic.Int64) JobSpec {
	return JobSpec{
		NewMapper: func(*JobConf) Mapper {
			execs.Add(1)
			return dummyKeyMapper{}
		},
		MemoKey: memoKey,
	}
}

func TestMapOutputCacheMemoisesAcrossJobs(t *testing.T) {
	cache := NewMapOutputCache()
	r := newMemoRig(t, cache)
	f := r.makeFile(t, "in", 8, 100)
	var execs atomic.Int64

	job1 := r.jt.Submit(countingSpec("memo|v1", &execs), SplitsForFile(f))
	if !RunUntilDone(r.eng, job1, 1e6) || job1.State() != StateSucceeded {
		t.Fatalf("job1: state=%v failure=%q", job1.State(), job1.Failure())
	}
	if got := execs.Load(); got != 8 {
		t.Fatalf("job1 real map executions = %d, want 8", got)
	}

	job2 := r.jt.Submit(countingSpec("memo|v1", &execs), SplitsForFile(f))
	if !RunUntilDone(r.eng, job2, 1e6) || job2.State() != StateSucceeded {
		t.Fatalf("job2: state=%v failure=%q", job2.State(), job2.Failure())
	}
	if got := execs.Load(); got != 8 {
		t.Fatalf("job2 re-ran mappers: executions = %d, want 8 (all splits memoised)", got)
	}
	if len(job1.Output()) != len(job2.Output()) {
		t.Fatalf("output sizes differ: %d vs %d", len(job1.Output()), len(job2.Output()))
	}
	if job1.Counters.MapOutputRecords != job2.Counters.MapOutputRecords ||
		job1.Counters.MapInputRecords != job2.Counters.MapInputRecords {
		t.Fatalf("counters diverged: %+v vs %+v", job1.Counters, job2.Counters)
	}
	hits, misses := cache.Stats()
	if hits != 8 || misses != 8 {
		t.Fatalf("cache stats hits=%d misses=%d, want 8/8", hits, misses)
	}

	// A different MemoKey must not collide with the cached outputs.
	job3 := r.jt.Submit(countingSpec("memo|v2", &execs), SplitsForFile(f))
	if !RunUntilDone(r.eng, job3, 1e6) || job3.State() != StateSucceeded {
		t.Fatalf("job3: state=%v failure=%q", job3.State(), job3.Failure())
	}
	if got := execs.Load(); got != 16 {
		t.Fatalf("distinct MemoKey hit the cache: executions = %d, want 16", got)
	}

	// An empty MemoKey opts out of memoization entirely.
	before := cache.Len()
	job4 := r.jt.Submit(countingSpec("", &execs), SplitsForFile(f))
	if !RunUntilDone(r.eng, job4, 1e6) || job4.State() != StateSucceeded {
		t.Fatalf("job4: state=%v failure=%q", job4.State(), job4.Failure())
	}
	if got := execs.Load(); got != 24 {
		t.Fatalf("empty MemoKey was memoised: executions = %d, want 24", got)
	}
	if cache.Len() != before {
		t.Fatalf("empty MemoKey stored entries: len %d -> %d", before, cache.Len())
	}
}

// A cache hit must not perturb the simulation: virtual-time costs are
// charged from split metadata before the mapper runs, so a fresh rig
// with a pre-warmed cache reports exactly the response time of a rig
// that computes for real.
func TestMapOutputCacheDoesNotChangeVirtualTime(t *testing.T) {
	var execs atomic.Int64
	srcs := makeSrcs(8, 100)

	cold := newMemoRig(t, nil)
	f1, err := cold.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	j1 := cold.jt.Submit(countingSpec("memo|vt", &execs), SplitsForFile(f1))
	if !RunUntilDone(cold.eng, j1, 1e6) || j1.State() != StateSucceeded {
		t.Fatalf("cold job: state=%v", j1.State())
	}

	cache := NewMapOutputCache()
	warmup := newMemoRig(t, cache)
	f2, err := warmup.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	jw := warmup.jt.Submit(countingSpec("memo|vt", &execs), SplitsForFile(f2))
	if !RunUntilDone(warmup.eng, jw, 1e6) || jw.State() != StateSucceeded {
		t.Fatalf("warmup job: state=%v", jw.State())
	}

	execs.Store(0)
	warm := newMemoRig(t, cache)
	f3, err := warm.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	j3 := warm.jt.Submit(countingSpec("memo|vt", &execs), SplitsForFile(f3))
	if !RunUntilDone(warm.eng, j3, 1e6) || j3.State() != StateSucceeded {
		t.Fatalf("warm job: state=%v", j3.State())
	}
	if got := execs.Load(); got != 0 {
		t.Fatalf("warm rig ran %d real mappers, want 0 (all splits cached)", got)
	}
	if j1.ResponseTime() != j3.ResponseTime() {
		t.Fatalf("memoization changed virtual time: cold %v, warm %v", j1.ResponseTime(), j3.ResponseTime())
	}
	if len(j1.Output()) != len(j3.Output()) {
		t.Fatalf("memoization changed output: %d vs %d pairs", len(j1.Output()), len(j3.Output()))
	}
}

// Trackers on separate goroutines may share one cache over the same
// sources; run under -race.
func TestMapOutputCacheConcurrentTrackers(t *testing.T) {
	cache := NewMapOutputCache()
	srcs := makeSrcs(8, 100)
	var execs atomic.Int64
	results := make(chan int, 4)
	for g := 0; g < 4; g++ {
		go func() {
			r := newMemoRig(t, cache)
			f, err := r.fs.Create("in", srcs, 1)
			if err != nil {
				results <- -1
				return
			}
			job := r.jt.Submit(countingSpec("memo|conc", &execs), SplitsForFile(f))
			if !RunUntilDone(r.eng, job, 1e6) || job.State() != StateSucceeded {
				results <- -1
				return
			}
			results <- len(job.Output())
		}()
	}
	for g := 0; g < 4; g++ {
		if n := <-results; n != 800 {
			t.Fatalf("concurrent tracker output = %d, want 800", n)
		}
	}
	if got := cache.Len(); got != 8 {
		t.Fatalf("cache entries = %d, want 8 (shared sources dedupe across trackers)", got)
	}
}
