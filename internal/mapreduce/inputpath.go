package mapreduce

import (
	"dynamicmr/internal/data"
)

// Input-path modes: how a map task reads its split. The zone map built
// at dataset load time (internal/dataset, data.StatSource) lets the
// skip and index modes touch only the statistics sub-blocks that can
// hold matching records, charging simulated I/O — and, when the source
// is prunable, real scan work — for just the blocks actually read.
const (
	// InputPathFull reads every block of every split: the seed
	// behaviour, byte-identical at every worker count and engine mode.
	InputPathFull = "full"
	// InputPathSkip reads only the statistics sub-blocks that admit at
	// least one record matching the job's FilterFingerprint.
	InputPathSkip = "skip"
	// InputPathIndex reads matching records through a clustered index:
	// one probe per match-admitting sub-block plus the matching records
	// themselves.
	InputPathIndex = "index"
)

// ValidInputPath reports whether mode names an input-path mode ("" is
// accepted and means InputPathFull).
func ValidInputPath(mode string) bool {
	switch mode {
	case "", InputPathFull, InputPathSkip, InputPathIndex:
		return true
	}
	return false
}

// inputPath resolves a job's input-path mode: the job conf's
// dynamic.input.path wins, then the runtime default, then full.
func (jt *JobTracker) inputPath(j *Job) string {
	if m := j.Conf.Get(ConfInputPath, ""); m != "" {
		return m
	}
	return jt.InputPath()
}

// InputPath returns the runtime's default input-path mode (full when
// unconfigured).
func (jt *JobTracker) InputPath() string {
	if jt.cfg.InputPath != "" {
		return jt.cfg.InputPath
	}
	return InputPathFull
}

// scanCharge is what one map attempt pays to read its split: simulated
// I/O bytes, input records, and the zone-map accounting behind them.
type scanCharge struct {
	bytes         float64
	records       int64
	blocksRead    int64
	blocksSkipped int64
}

// scanCharge computes the attempt's read cost. A pure function of
// (job conf/spec, split), so completion-time accounting can recompute
// it. Without a filter fingerprint, or without statistics for it, every
// mode degenerates to a full read of the split counted as one block —
// the seed's exact charge.
func (jt *JobTracker) scanCharge(j *Job, sp Split) scanCharge {
	full := scanCharge{bytes: float64(sp.SizeBytes()), records: sp.NumRecords(), blocksRead: 1}
	fp := j.Spec.FilterFingerprint
	if fp == "" {
		return full
	}
	st, ok := sp.Block.BlockStats(fp)
	if !ok || st.Blocks == 0 {
		return full
	}
	switch jt.inputPath(j) {
	case InputPathSkip:
		return scanCharge{
			bytes:         float64(st.MatchBytes),
			records:       st.MatchRows,
			blocksRead:    int64(st.MatchBlocks),
			blocksSkipped: int64(st.Blocks - st.MatchBlocks),
		}
	case InputPathIndex:
		var rowBytes float64
		if st.Rows > 0 {
			rowBytes = float64(st.Bytes) / float64(st.Rows)
		}
		return scanCharge{
			bytes:         float64(st.MatchBlocks)*jt.cfg.Costs.IndexProbeBytes + float64(st.Matches)*rowBytes,
			records:       st.Matches,
			blocksRead:    int64(st.MatchBlocks),
			blocksSkipped: int64(st.Blocks - st.MatchBlocks),
		}
	default:
		full.blocksRead = int64(st.Blocks)
		return full
	}
}

// scanSource returns the source a map attempt's real record scan runs
// over: the block's source, or its pruned view under skip/index when
// the job declares a filter fingerprint the source has statistics for.
// Block identity — memo-cache, scan-executor and resident-store keys —
// always uses the original source; only the scan itself is narrowed.
func (jt *JobTracker) scanSource(j *Job, sp Split) data.Source {
	src := sp.Block.Source
	mode := jt.inputPath(j)
	if mode == InputPathFull || mode == "" || j.Spec.FilterFingerprint == "" {
		return src
	}
	if ps, ok := src.(data.PrunableSource); ok {
		if v, ok := ps.PruneScan(j.Spec.FilterFingerprint, mode == InputPathIndex); ok {
			return v
		}
	}
	return src
}

// effMemo returns the job's effective memo key. Skip/index reads of a
// fingerprinted job are kept in a separate memo namespace from full
// reads: the FilterFingerprint contract makes their outputs identical,
// but the cache never relies on an unverified declaration across
// modes. Full mode returns the spec key unchanged, preserving the
// seed's sharing exactly.
func (jt *JobTracker) effMemo(j *Job) string {
	memo := j.Spec.MemoKey
	if memo == "" {
		return ""
	}
	if mode := jt.inputPath(j); mode != InputPathFull && mode != "" && j.Spec.FilterFingerprint != "" {
		return memo + "|path=" + mode
	}
	return memo
}
