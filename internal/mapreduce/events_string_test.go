package mapreduce

import (
	"strings"
	"testing"
)

// TestTaskEventTypeStringRoundTrip pins every declared event constant
// to its name: adding a constant without extending String() (which
// would print the TaskEventType(n) fallback) fails both subtests.
func TestTaskEventTypeStringRoundTrip(t *testing.T) {
	cases := []struct {
		ev   TaskEventType
		want string
	}{
		{EventJobSubmitted, "JOB_SUBMITTED"},
		{EventMapStarted, "MAP_STARTED"},
		{EventMapFinished, "MAP_FINISHED"},
		{EventMapFailed, "MAP_FAILED"},
		{EventMapKilled, "MAP_KILLED"},
		{EventReduceStarted, "REDUCE_STARTED"},
		{EventReduceFinished, "REDUCE_FINISHED"},
		{EventJobFinished, "JOB_FINISHED"},
	}
	if TaskEventType(len(cases)) == EventJobSubmitted {
		t.Fatal("impossible: constant range empty")
	}
	seen := make(map[string]bool)
	for _, c := range cases {
		got := c.ev.String()
		if got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.ev, got, c.want)
		}
		if strings.Contains(got, "TaskEventType(") {
			t.Errorf("%q hit the numeric fallback", got)
		}
		if seen[got] {
			t.Errorf("duplicate name %q", got)
		}
		seen[got] = true
	}
	// Walk the contiguous iota range: every value below the first
	// fallback must be covered by the table above, so the table cannot
	// silently lag behind a newly added constant.
	n := 0
	for ; n < 256; n++ {
		if strings.Contains(TaskEventType(n).String(), "TaskEventType(") {
			break
		}
	}
	if n != len(cases) {
		t.Fatalf("String() covers %d event types, table covers %d — keep them in sync", n, len(cases))
	}
}
