package mapreduce

import "sort"

// TaskScheduler assigns pending tasks to a tracker's free slots at each
// scheduling opportunity (heartbeat or task completion). Implementations
// must only return tasks that are currently pending.
type TaskScheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// AssignMaps picks up to max map tasks to launch on tt.
	AssignMaps(jt *JobTracker, tt *TaskTracker, max int) []*MapTask
	// AssignReduces picks up to max reduce tasks to launch on tt.
	AssignReduces(jt *JobTracker, tt *TaskTracker, max int) []*ReduceTask
}

// FIFOScheduler is Hadoop's default: jobs served strictly in submission
// order; within a job, node-local splits are preferred but a non-local
// split is launched immediately when no local one exists (no delay —
// which is why the paper measures only 57% locality under the default
// scheduler).
type FIFOScheduler struct{}

// NewFIFOScheduler returns the default scheduler.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Name implements TaskScheduler.
func (s *FIFOScheduler) Name() string { return "fifo" }

// AssignMaps implements TaskScheduler.
func (s *FIFOScheduler) AssignMaps(jt *JobTracker, tt *TaskTracker, max int) []*MapTask {
	var out []*MapTask
	for len(out) < max {
		var picked *MapTask
		for _, j := range jt.jobs {
			if j.Done() || len(j.pendingMaps) == 0 {
				continue
			}
			if t := j.localPendingTask(tt.node.ID); t != nil {
				picked = t
			} else {
				picked = j.pendingMaps[0]
			}
			break
		}
		if picked == nil {
			break
		}
		out = append(out, picked)
		// Mark it non-pending for the remainder of this opportunity by
		// letting launchMap consume it: callers launch in order, so we
		// must not pick it twice. Temporarily remove here and re-add.
		picked.Job.takePending(picked)
		defer func(t *MapTask) { t.Job.pendingMaps = append([]*MapTask{t}, t.Job.pendingMaps...) }(picked)
	}
	return out
}

// AssignReduces implements TaskScheduler.
func (s *FIFOScheduler) AssignReduces(jt *JobTracker, tt *TaskTracker, max int) []*ReduceTask {
	var out []*ReduceTask
	for _, j := range jt.jobs {
		if j.Done() || j.state != StateReducePhase {
			continue
		}
		for _, t := range j.pendingReduces {
			if len(out) >= max {
				return out
			}
			out = append(out, t)
		}
		if len(out) >= max {
			return out
		}
	}
	return out
}

// fairJobState tracks delay-scheduling state per job.
type fairJobState struct {
	waiting   bool
	waitStart float64
}

// FairScheduler implements the Fair Scheduler of §V-F: per-user pools
// receive equal shares of the map slots; the most-starved pool is served
// first; and delay scheduling holds a job back for up to LocalityWaitS
// when it has no node-local split for the offering tracker, trading
// slot occupancy for locality (the paper measures 88% locality at 18%
// occupancy versus FIFO's 57% at 44%).
type FairScheduler struct {
	// LocalityWaitS is the maximum time a job waits for a local slot
	// before accepting a non-local assignment.
	LocalityWaitS float64
	state         map[*Job]*fairJobState
}

// NewFairScheduler returns a Fair Scheduler with the given locality
// wait (<= 0 disables delay scheduling).
func NewFairScheduler(localityWaitS float64) *FairScheduler {
	return &FairScheduler{LocalityWaitS: localityWaitS, state: make(map[*Job]*fairJobState)}
}

// Name implements TaskScheduler.
func (s *FairScheduler) Name() string { return "fair" }

// retireJob implements the tracker's jobRetirer hook.
func (s *FairScheduler) retireJob(j *Job) { delete(s.state, j) }

func (s *FairScheduler) jobState(j *Job) *fairJobState {
	st := s.state[j]
	if st == nil {
		st = &fairJobState{}
		s.state[j] = st
	}
	return st
}

// poolOrder returns jobs grouped by pool, pools sorted most-starved
// first (fewest running maps relative to fair share), jobs FIFO within
// a pool.
func (s *FairScheduler) poolOrder(jt *JobTracker) [][]*Job {
	pools := make(map[string][]*Job)
	var names []string
	for _, j := range jt.jobs {
		if j.Done() || len(j.pendingMaps) == 0 {
			continue
		}
		if _, ok := pools[j.User]; !ok {
			names = append(names, j.User)
		}
		pools[j.User] = append(pools[j.User], j)
	}
	if len(names) == 0 {
		return nil
	}
	share := float64(jt.cluster.Cfg.TotalMapSlots()) / float64(len(names))
	type ranked struct {
		name    string
		deficit float64
		firstID int
	}
	rs := make([]ranked, 0, len(names))
	for _, n := range names {
		running := 0
		for _, j := range pools[n] {
			running += len(j.runningMaps)
		}
		rs = append(rs, ranked{
			name:    n,
			deficit: float64(running) / share,
			firstID: pools[n][0].ID,
		})
	}
	sort.Slice(rs, func(i, k int) bool {
		if rs[i].deficit != rs[k].deficit {
			return rs[i].deficit < rs[k].deficit
		}
		return rs[i].firstID < rs[k].firstID
	})
	out := make([][]*Job, len(rs))
	for i, r := range rs {
		out[i] = pools[r.name]
	}
	return out
}

// AssignMaps implements TaskScheduler with delay scheduling.
func (s *FairScheduler) AssignMaps(jt *JobTracker, tt *TaskTracker, max int) []*MapTask {
	now := jt.eng.Now()
	var out []*MapTask
	var undo []*MapTask
	defer func() {
		for _, t := range undo {
			t.Job.pendingMaps = append([]*MapTask{t}, t.Job.pendingMaps...)
		}
	}()
	for len(out) < max {
		var picked *MapTask
	search:
		for _, pool := range s.poolOrder(jt) {
			for _, j := range pool {
				if len(j.pendingMaps) == 0 {
					continue
				}
				st := s.jobState(j)
				if t := j.localPendingTask(tt.node.ID); t != nil {
					picked = t
					st.waiting = false
					break search
				}
				if s.LocalityWaitS <= 0 {
					picked = j.pendingMaps[0]
					break search
				}
				if !st.waiting {
					st.waiting = true
					st.waitStart = now
					continue // hold out for locality; try next job
				}
				if now-st.waitStart >= s.LocalityWaitS {
					picked = j.pendingMaps[0]
					st.waiting = false
					break search
				}
				// Still within the locality wait: skip this job.
			}
		}
		if picked == nil {
			break
		}
		out = append(out, picked)
		picked.Job.takePending(picked)
		undo = append(undo, picked)
	}
	return out
}

// AssignReduces implements TaskScheduler (reduces have no locality;
// pools are served most-starved first).
func (s *FairScheduler) AssignReduces(jt *JobTracker, tt *TaskTracker, max int) []*ReduceTask {
	var out []*ReduceTask
	for _, j := range jt.jobs {
		if j.Done() || j.state != StateReducePhase {
			continue
		}
		for _, t := range j.pendingReduces {
			if len(out) >= max {
				return out
			}
			out = append(out, t)
		}
		if len(out) >= max {
			return out
		}
	}
	return out
}
