package mapreduce

import (
	"sync/atomic"
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
)

const testFP = "(TEST = 1)"

// fakeStatSrc is a data.Source with hand-written zone statistics and
// pruned views: the first stats.MatchRows records stand in for the
// match-admitting sub-blocks, and the first stats.Matches records for
// the clustered-index reads.
type fakeStatSrc struct {
	recs  []data.Record
	stats data.BlockStats
}

func newFakeStatSrc(base int64) *fakeStatSrc {
	recs := make([]data.Record, 100)
	for i := range recs {
		v := base + int64(i)
		recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(v), data.Int(v * 10)})
	}
	return &fakeStatSrc{
		recs: recs,
		stats: data.BlockStats{
			Blocks: 10, MatchBlocks: 2,
			Rows: 100, Bytes: 5000,
			MatchRows: 20, MatchBytes: 1000,
			Matches: 5,
		},
	}
}

func (s *fakeStatSrc) Schema() *data.Schema { return kvSchema }
func (s *fakeStatSrc) NumRecords() int64    { return int64(len(s.recs)) }
func (s *fakeStatSrc) SizeBytes() int64     { return s.stats.Bytes }
func (s *fakeStatSrc) Scan(yield func(data.Record) bool) {
	for _, r := range s.recs {
		if !yield(r) {
			return
		}
	}
}

func (s *fakeStatSrc) BlockStats(fp string) (data.BlockStats, bool) {
	if fp != testFP {
		return data.BlockStats{}, false
	}
	return s.stats, true
}

func (s *fakeStatSrc) PruneScan(fp string, indexed bool) (data.Source, bool) {
	if fp != testFP {
		return nil, false
	}
	n := s.stats.MatchRows
	if indexed {
		n = s.stats.Matches
	}
	return data.NewSliceSource(kvSchema, s.recs[:n]), true
}

// makeStatFile stores blocks of fakeStatSrc in the rig's DFS.
func makeStatFile(t *testing.T, r *testRig, blocks int) *dfs.File {
	t.Helper()
	srcs := make([]data.Source, blocks)
	for i := range srcs {
		srcs[i] = newFakeStatSrc(int64(i) * 1000)
	}
	f, err := r.fs.Create("statin", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runPathJob runs one fingerprinted job under the given input-path mode
// (set on the job conf) and returns it.
func runPathJob(t *testing.T, r *testRig, f *dfs.File, mode, memo string) *Job {
	t.Helper()
	conf := NewJobConf()
	if mode != "" {
		conf.Set(ConfInputPath, mode)
	}
	job := r.jt.Submit(JobSpec{
		Conf:              conf,
		NewMapper:         func(*JobConf) Mapper { return dummyKeyMapper{} },
		MemoKey:           memo,
		FilterFingerprint: testFP,
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e8) || job.State() != StateSucceeded {
		t.Fatalf("mode %q: state=%v failure=%q", mode, job.State(), job.Failure())
	}
	return job
}

func TestScanChargeByMode(t *testing.T) {
	const blocks = 4
	r := newRig(t, nil)
	f := makeStatFile(t, r, blocks)

	full := runPathJob(t, r, f, InputPathFull, "")
	if full.Counters.ScanBlocksRead != blocks*10 || full.Counters.ScanBlocksSkipped != 0 {
		t.Fatalf("full blocks: read=%d skipped=%d, want %d/0",
			full.Counters.ScanBlocksRead, full.Counters.ScanBlocksSkipped, blocks*10)
	}
	if full.Counters.MapInputRecords != blocks*100 || full.Counters.BytesRead != blocks*5000 {
		t.Fatalf("full charge: records=%d bytes=%d", full.Counters.MapInputRecords, full.Counters.BytesRead)
	}
	if full.Counters.MapOutputRecords != blocks*100 {
		t.Fatalf("full scanned %d records, want %d", full.Counters.MapOutputRecords, blocks*100)
	}

	skip := runPathJob(t, r, f, InputPathSkip, "")
	if skip.Counters.ScanBlocksRead != blocks*2 || skip.Counters.ScanBlocksSkipped != blocks*8 {
		t.Fatalf("skip blocks: read=%d skipped=%d, want %d/%d",
			skip.Counters.ScanBlocksRead, skip.Counters.ScanBlocksSkipped, blocks*2, blocks*8)
	}
	if skip.Counters.MapInputRecords != blocks*20 || skip.Counters.BytesRead != blocks*1000 {
		t.Fatalf("skip charge: records=%d bytes=%d", skip.Counters.MapInputRecords, skip.Counters.BytesRead)
	}
	if skip.Counters.MapOutputRecords != blocks*20 {
		t.Fatalf("skip scanned %d records, want %d (pruned view)", skip.Counters.MapOutputRecords, blocks*20)
	}
	if skip.ResponseTime() >= full.ResponseTime() {
		t.Fatalf("skip response %.4fs not faster than full %.4fs", skip.ResponseTime(), full.ResponseTime())
	}

	idx := runPathJob(t, r, f, InputPathIndex, "")
	if idx.Counters.ScanBlocksRead != blocks*2 || idx.Counters.ScanBlocksSkipped != blocks*8 {
		t.Fatalf("index blocks: read=%d skipped=%d", idx.Counters.ScanBlocksRead, idx.Counters.ScanBlocksSkipped)
	}
	if idx.Counters.MapInputRecords != blocks*5 {
		t.Fatalf("index records=%d, want %d", idx.Counters.MapInputRecords, blocks*5)
	}
	// Per split: 2 probes x IndexProbeBytes + 5 matches x (5000/100) B.
	wantBytes := int64(blocks * (2*int(r.jt.cfg.Costs.IndexProbeBytes) + 5*50))
	if idx.Counters.BytesRead != wantBytes {
		t.Fatalf("index bytes=%d, want %d", idx.Counters.BytesRead, wantBytes)
	}
	if idx.Counters.MapOutputRecords != blocks*5 {
		t.Fatalf("index scanned %d records, want %d (clustered-index view)", idx.Counters.MapOutputRecords, blocks*5)
	}

	// JobStatus mirrors the counters.
	st := r.jt.Status(skip)
	if st.ScanBlocksRead != skip.Counters.ScanBlocksRead || st.ScanBlocksSkip != skip.Counters.ScanBlocksSkipped {
		t.Fatalf("status counters %d/%d diverge from job %d/%d",
			st.ScanBlocksRead, st.ScanBlocksSkip, skip.Counters.ScanBlocksRead, skip.Counters.ScanBlocksSkipped)
	}
}

// A job without a FilterFingerprint pays the full charge under every
// mode — statistics only apply to declared-pure filters.
func TestSkipModeWithoutFingerprintReadsFully(t *testing.T) {
	r := newRig(t, nil)
	r.jt.cfg.InputPath = InputPathSkip
	f := makeStatFile(t, r, 2)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e8) || job.State() != StateSucceeded {
		t.Fatalf("state=%v", job.State())
	}
	if job.Counters.MapInputRecords != 200 || job.Counters.ScanBlocksSkipped != 0 {
		t.Fatalf("unfingerprinted job pruned: %+v", job.Counters)
	}
}

// Sources without statistics fall back to the full charge, counted as
// one block (the seed's accounting).
func TestSkipModeWithoutStatsReadsFully(t *testing.T) {
	r := newRig(t, nil)
	r.jt.cfg.InputPath = InputPathSkip
	f := r.makeFile(t, "plain", 3, 10)
	conf := NewJobConf()
	job := r.jt.Submit(JobSpec{
		Conf:              conf,
		NewMapper:         func(*JobConf) Mapper { return dummyKeyMapper{} },
		FilterFingerprint: testFP,
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e8) || job.State() != StateSucceeded {
		t.Fatalf("state=%v", job.State())
	}
	if job.Counters.MapInputRecords != 30 || job.Counters.ScanBlocksRead != 3 || job.Counters.ScanBlocksSkipped != 0 {
		t.Fatalf("stat-less source mischarged: %+v", job.Counters)
	}
}

// The runtime default applies when the job conf is silent, and the conf
// overrides it in either direction.
func TestInputPathConfOverridesRuntimeDefault(t *testing.T) {
	r := newRig(t, nil)
	r.jt.cfg.InputPath = InputPathSkip
	f := makeStatFile(t, r, 2)

	// No conf key: runtime default (skip) applies.
	def := runPathJob(t, r, f, "", "")
	if def.Counters.MapInputRecords != 2*20 {
		t.Fatalf("runtime default ignored: records=%d", def.Counters.MapInputRecords)
	}
	// Conf says full: overrides the skip default.
	full := runPathJob(t, r, f, InputPathFull, "")
	if full.Counters.MapInputRecords != 2*100 {
		t.Fatalf("conf override ignored: records=%d", full.Counters.MapInputRecords)
	}
}

// Memo isolation: full and skip reads of the same MemoKey never share
// cached map outputs, while two skip reads do.
func TestMemoIsolationAcrossInputPaths(t *testing.T) {
	cache := NewMapOutputCache()
	r := newMemoRig(t, cache)
	f := makeStatFile(t, r, 4)

	var execs atomic.Int64
	run := func(mode string) *Job {
		conf := NewJobConf()
		conf.Set(ConfInputPath, mode)
		job := r.jt.Submit(JobSpec{
			Conf: conf,
			NewMapper: func(*JobConf) Mapper {
				execs.Add(1)
				return dummyKeyMapper{}
			},
			MemoKey:           "iso|v1",
			FilterFingerprint: testFP,
		}, SplitsForFile(f))
		if !RunUntilDone(r.eng, job, 1e8) || job.State() != StateSucceeded {
			t.Fatalf("mode %q: state=%v", mode, job.State())
		}
		return job
	}

	run(InputPathFull)
	if got := execs.Load(); got != 4 {
		t.Fatalf("full ran %d mappers, want 4", got)
	}
	skip1 := run(InputPathSkip)
	if got := execs.Load(); got != 8 {
		t.Fatalf("skip hit full's memo entries: execs=%d, want 8", got)
	}
	skip2 := run(InputPathSkip)
	if got := execs.Load(); got != 8 {
		t.Fatalf("second skip missed the memo: execs=%d, want 8", got)
	}
	if len(skip1.Output()) != len(skip2.Output()) {
		t.Fatalf("memoised skip output differs: %d vs %d", len(skip1.Output()), len(skip2.Output()))
	}
}
