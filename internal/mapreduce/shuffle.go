package mapreduce

import (
	"slices"
	"strings"
	"sync"
)

// seqPair tags a KeyValue with its input position so a non-stable sort
// can break key ties on it, reproducing stable order.
type seqPair struct {
	kv  KeyValue
	seq int32
}

// seqScratch recycles the tag buffers sortPairsStable uses across
// shuffle/combine sorts, keeping the hot path allocation-free once
// warm.
var seqScratch = sync.Pool{New: func() any { return new([]seqPair) }}

// sortPairsStable sorts pairs by key in place, preserving the existing
// order of equal keys. It replaces sort.SliceStable — whose
// reflection-based swap dominated the shuffle profile — with
// slices.SortFunc over an explicit (key, input-sequence) ordering,
// which is equivalent to a stable key sort.
func sortPairsStable(pairs []KeyValue) {
	if len(pairs) < 2 {
		return
	}
	bufp := seqScratch.Get().(*[]seqPair)
	buf := *bufp
	if cap(buf) < len(pairs) {
		buf = make([]seqPair, len(pairs))
	}
	buf = buf[:len(pairs)]
	for i, kv := range pairs {
		buf[i] = seqPair{kv: kv, seq: int32(i)}
	}
	slices.SortFunc(buf, func(a, b seqPair) int {
		if c := strings.Compare(a.kv.Key, b.kv.Key); c != 0 {
			return c
		}
		return int(a.seq - b.seq)
	})
	for i := range buf {
		pairs[i] = buf[i].kv
	}
	clear(buf) // drop record references so recycling doesn't pin them
	*bufp = buf[:0]
	seqScratch.Put(bufp)
}

// collectorPool recycles Collector backing arrays across task
// attempts: every map and reduce attempt allocates a collector whose
// pairs array is copied out (into shuffle chunks or job output) before
// the attempt finishes, so the array itself is reusable. Collectors
// that escape — memoised in a MapOutputCache or shared through a scan
// future — are never recycled; see the recycleCollector call sites.
var collectorPool = sync.Pool{New: func() any { return new(Collector) }}

// newCollector returns an empty collector, reusing a recycled backing
// array when one is available.
func newCollector() *Collector { return collectorPool.Get().(*Collector) }

// recycleCollector resets c and returns it to the pool. Callers must
// only recycle collectors they exclusively own — never one stored in a
// cache or still referenced elsewhere.
func recycleCollector(c *Collector) {
	if c == nil {
		return
	}
	clear(c.pairs) // release record references before reuse
	c.pairs = c.pairs[:0]
	c.bytes = 0
	c.counters = nil
	collectorPool.Put(c)
}
