package mapreduce

import (
	"strings"
	"testing"

	"dynamicmr/internal/data"
)

func TestEventLogCoversLifecycle(t *testing.T) {
	r := newRig(t, nil)
	var events []TaskEvent
	r.jt.Subscribe(func(e TaskEvent) { events = append(events, e) })
	f := r.makeFile(t, "in", 4, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job stuck")
	}
	count := map[TaskEventType]int{}
	lastT := -1.0
	for _, e := range events {
		count[e.Type]++
		if e.Time < lastT {
			t.Fatalf("event times regress: %v after %v", e.Time, lastT)
		}
		lastT = e.Time
		if e.JobID != job.ID {
			t.Fatalf("foreign job id in event: %+v", e)
		}
	}
	if count[EventJobSubmitted] != 1 || count[EventJobFinished] != 1 {
		t.Fatalf("job events: %+v", count)
	}
	if count[EventMapStarted] != 4 || count[EventMapFinished] != 4 {
		t.Fatalf("map events: %+v", count)
	}
	if count[EventReduceStarted] != 1 || count[EventReduceFinished] != 1 {
		t.Fatalf("reduce events: %+v", count)
	}
	// Rendering sanity.
	if !strings.Contains(events[0].String(), "JOB_SUBMITTED") {
		t.Fatalf("event string: %s", events[0])
	}
}

func TestEventLogRecordsFailures(t *testing.T) {
	r := newRig(t, nil)
	var failed, finished int
	r.jt.Subscribe(func(e TaskEvent) {
		switch e.Type {
		case EventMapFailed:
			failed++
		case EventMapFinished:
			finished++
		}
	})
	r.jt.cfg.FailureInjector = func(j *Job, mt *MapTask) bool {
		return mt.Index == 0 && mt.Attempts == 1
	}
	f := r.makeFile(t, "in", 2, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	RunUntilDone(r.eng, job, 1e6)
	if failed != 1 || finished != 2 {
		t.Fatalf("failed=%d finished=%d", failed, finished)
	}
}

func TestUserCounters(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 4, 25)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(rec data.Record, out *Collector) error {
				out.Emit("k", rec)
				out.Inc("records.seen", 1)
				if rec.MustGet("K").AsInt()%2 == 0 {
					out.Inc("records.even", 1)
				}
				return nil
			})
		},
		NewReducer: func(*JobConf) Reducer {
			return ReducerFunc(func(key string, vals []data.Record, out *Collector) error {
				out.Inc("reduce.groups", 1)
				return nil
			})
		},
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job stuck")
	}
	if got := job.Counters.UserCounter("records.seen"); got != 100 {
		t.Fatalf("records.seen = %d, want 100", got)
	}
	if got := job.Counters.UserCounter("records.even"); got != 50 {
		t.Fatalf("records.even = %d, want 50", got)
	}
	if got := job.Counters.UserCounter("reduce.groups"); got != 1 {
		t.Fatalf("reduce.groups = %d, want 1", got)
	}
	if job.Counters.UserCounter("never") != 0 {
		t.Fatal("unknown counter not zero")
	}
}
