package mapreduce

import (
	"fmt"

	"dynamicmr/internal/data"
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

// mapAttempt is one execution of a MapTask on a tracker. A task may
// have a second, speculative attempt racing the first; the loser is
// killed mid-flight.
type mapAttempt struct {
	task        *MapTask
	tt          *TaskTracker
	local       bool
	loc         dfsLocation
	speculative bool
	startTime   float64
	// seq is the attempt ordinal (task.Attempts at launch); later
	// launches advance task.Attempts, so trace spans capture it here.
	seq int
	// phase/phaseStart track the open trace phase span; phase is ""
	// when tracing is disabled or no phase is open.
	phase      string
	phaseStart float64

	// in-flight stage handles for cancellation
	timer  *sim.Event
	res    *sim.SharedResource
	demand *sim.Demand
	killed bool

	// scan is the attempt's asynchronous record scan on the executor
	// pool (nil when the scan runs inline: no pool, or an impure job).
	// A killed or superseded attempt simply abandons the handle — pure
	// results are reusable, so the pool finishes the work in the
	// background and memoises it for whoever needs it next.
	scan *executor.Future
}

// tracePhase closes the attempt's open phase span, if any, and opens
// next ("" closes without opening). No-op when tracing is disabled.
func (jt *JobTracker) tracePhase(att *mapAttempt, next string) {
	if !jt.tracer.Enabled() {
		return
	}
	now := jt.eng.Now()
	if att.phase != "" {
		jt.tracer.Record(trace.Span{Name: att.phase, Cat: trace.CatMap,
			Start: att.phaseStart, End: now, Job: att.task.Job.ID, Task: att.task.Index,
			Attempt: att.seq, Node: att.tt.node.ID, Speculative: att.speculative})
	}
	att.phase, att.phaseStart = next, now
}

// dfsLocation mirrors dfs.Location without importing the package here.
type dfsLocation struct{ Node, Disk int }

// launchMap runs a map attempt on the tracker's node. The attempt's
// timeline: slot occupied → startup latency → split read (local disk,
// or remote disk + network) → CPU → user mapper executes → completion
// report (or injected failure → requeue). speculative attempts race an
// existing one.
func (jt *JobTracker) launchMap(tt *TaskTracker, t *MapTask) {
	t.Job.takePending(t)
	jt.startAttempt(tt, t, false)
}

// launchSpeculative starts a backup attempt for a running task.
func (jt *JobTracker) launchSpeculative(tt *TaskTracker, t *MapTask) {
	t.Job.Counters.SpeculativeLaunches++
	jt.startAttempt(tt, t, true)
}

func (jt *JobTracker) startAttempt(tt *TaskTracker, t *MapTask, speculative bool) {
	j := t.Job
	j.runningMaps[t] = struct{}{}
	t.Attempts++
	t.Node = tt.node.ID

	loc, local := t.Split.Block.LocalTo(tt.node.ID)
	if !local {
		loc = t.Split.Block.Primary()
	}
	t.Local = local

	att := &mapAttempt{
		task:        t,
		tt:          tt,
		local:       local,
		loc:         dfsLocation{Node: loc.Node, Disk: loc.Disk},
		speculative: speculative,
		startTime:   jt.eng.Now(),
		seq:         t.Attempts,
	}
	t.running = append(t.running, att)
	// The attempt's inputs (split, conf, MemoKey) are fixed from here
	// on, so the real record scan can start now on the executor pool
	// while the simulation charges the attempt's virtual I/O and CPU.
	att.scan = jt.submitScan(t)

	tt.changeMapSlots(+1)
	jt.changeMapSlots(+1)
	jt.emit(TaskEvent{Type: EventMapStarted, JobID: j.ID, TaskIndex: t.Index,
		Node: tt.node.ID, Attempt: t.Attempts, Speculative: speculative})
	if tr := jt.tracer; tr.Enabled() {
		if speculative {
			tr.Instant(trace.EventSpeculativeLaunch, trace.CatMap, att.startTime, j.ID, t.Index, tt.node.ID)
			tr.Inc(trace.CounterMapSpeculative, 1)
		} else {
			tr.Record(trace.Span{Name: trace.SpanQueueWait, Cat: trace.CatMap,
				Start: t.enqueued, End: att.startTime, Job: j.ID, Task: t.Index,
				Attempt: att.seq, Node: tt.node.ID})
			tr.Observe(trace.HistMapQueueWait, att.startTime-t.enqueued)
		}
		tr.Inc(trace.CounterMapAttempts, 1)
	}
	jt.tracePhase(att, trace.SpanStartup)

	ch := jt.scanCharge(j, t.Split)
	bytes := ch.bytes
	records := ch.records
	costs := jt.cfg.Costs

	finish := func() {
		att.res, att.demand = nil, nil
		jt.finishMapAttempt(att)
	}
	cpuPhase := func() {
		if att.killed {
			return
		}
		jt.tracePhase(att, trace.SpanMapCPU)
		work := float64(records)*costs.MapCPUPerRecordS + bytes*costs.MapCPUPerByteS
		att.res = tt.node.CPU
		att.demand = tt.node.CPU.Submit(work, finish)
	}
	readPhase := func() {
		att.timer = nil
		if att.killed {
			return
		}
		// The read is committed: every attempt reaching its read phase
		// pays for its blocks, like the disk I/O below.
		j.Counters.ScanBlocksRead += ch.blocksRead
		j.Counters.ScanBlocksSkipped += ch.blocksSkipped
		if tr := jt.tracer; tr.Enabled() {
			tr.Inc(trace.CounterScanBlocksRead, ch.blocksRead)
			tr.Inc(trace.CounterScanBlocksSkipped, ch.blocksSkipped)
		}
		jt.tracePhase(att, trace.SpanDiskRead)
		disk := jt.cluster.Node(att.loc.Node).Disks[att.loc.Disk]
		if local {
			att.res = disk
			att.demand = disk.Submit(bytes, cpuPhase)
		} else {
			// Remote read: source disk, then the fabric.
			att.res = disk
			att.demand = disk.Submit(bytes, func() {
				if att.killed {
					return
				}
				jt.tracePhase(att, trace.SpanNetRead)
				att.res = jt.cluster.Network
				att.demand = jt.cluster.Network.Submit(bytes, cpuPhase)
			})
		}
	}
	att.timer = jt.eng.After(costs.TaskStartupS, readPhase)
}

// killAttempt cancels an in-flight attempt and frees its slot.
func (jt *JobTracker) killAttempt(att *mapAttempt) {
	if att.killed {
		return
	}
	att.killed = true
	att.scan = nil // abandon any async scan; the pool finishes it
	if att.timer != nil {
		jt.eng.Cancel(att.timer)
		att.timer = nil
	}
	if att.res != nil && att.demand != nil {
		att.res.Cancel(att.demand)
		att.res, att.demand = nil, nil
	}
	att.task.Job.Counters.KilledAttempts++
	jt.emit(TaskEvent{Type: EventMapKilled, JobID: att.task.Job.ID, TaskIndex: att.task.Index,
		Node: att.tt.node.ID, Speculative: att.speculative})
	jt.tracePhase(att, "")
	if tr := jt.tracer; tr.Enabled() {
		now := jt.eng.Now()
		tr.Record(trace.Span{Name: trace.SpanMapAttempt, Cat: trace.CatMap,
			Start: att.startTime, End: now, Job: att.task.Job.ID, Task: att.task.Index,
			Attempt: att.seq, Node: att.tt.node.ID, Speculative: att.speculative,
			Outcome: trace.OutcomeKilled})
		tr.Instant(trace.EventMapKilled, trace.CatMap, now, att.task.Job.ID, att.task.Index, att.tt.node.ID)
		tr.Inc(trace.CounterMapKilled, 1)
	}
	jt.releaseAttempt(att)
}

// releaseAttempt frees the attempt's slot and detaches it from its
// task, updating the job's running-task set.
func (jt *JobTracker) releaseAttempt(att *mapAttempt) {
	t := att.task
	for i, x := range t.running {
		if x == att {
			t.running = append(t.running[:i], t.running[i+1:]...)
			break
		}
	}
	if len(t.running) == 0 {
		delete(t.Job.runningMaps, t)
		t.Node = -1
	}
	att.tt.changeMapSlots(-1)
	jt.changeMapSlots(-1)
}

// finishMapAttempt runs the real user mapper, applies failure
// injection, and reports completion to the job.
func (jt *JobTracker) finishMapAttempt(att *mapAttempt) {
	if att.killed {
		return
	}
	t := att.task
	j := t.Job
	tt := att.tt
	jt.tracePhase(att, "")
	jt.releaseAttempt(att)
	att.killed = true // no further stages may run
	scan := att.scan
	att.scan = nil

	if j.Done() || t.completed {
		// Job failed mid-flight, or a sibling attempt won the race in
		// the same instant; the slot is already free.
		jt.tracer.Record(trace.Span{Name: trace.SpanMapAttempt, Cat: trace.CatMap,
			Start: att.startTime, End: jt.eng.Now(), Job: j.ID, Task: t.Index,
			Attempt: att.seq, Node: tt.node.ID, Speculative: att.speculative,
			Outcome: trace.OutcomeLate})
		jt.assign(tt)
		return
	}

	failed := false
	var out *Collector
	var rp *residentPart
	var err error
	switch {
	case jt.cfg.FailureInjector != nil && jt.cfg.FailureInjector(j, t):
		// Injected failure: any async scan is abandoned (its pure
		// result stays reusable via the cache for the retry).
		failed = true
		err = fmt.Errorf("injected failure")
	case j.resident:
		// Memory engine mode: a resident part from a prior job of the
		// session replaces both the scan join and the mapper run — the
		// delta-shuffle hit. A miss takes the baseline path and admits
		// the freshly partitioned output below.
		rp = jt.cfg.ResidentStore.acquire(t.Split.Block.Source, jt.effMemo(j), j.numReduces)
		if rp == nil {
			if scan != nil {
				out, err = jt.joinScan(scan)
			} else {
				out, err = jt.execMapper(t)
			}
			failed = err != nil
		}
	case scan != nil:
		// Event-order join of the scan submitted at attempt start.
		out, err = jt.joinScan(scan)
		failed = err != nil
	default:
		out, err = jt.execMapper(t)
		failed = err != nil
	}

	if failed {
		j.Counters.FailedMapAttempts++
		jt.emit(TaskEvent{Type: EventMapFailed, JobID: j.ID, TaskIndex: t.Index,
			Node: tt.node.ID, Attempt: t.Attempts, Speculative: att.speculative})
		if tr := jt.tracer; tr.Enabled() {
			now := jt.eng.Now()
			tr.Record(trace.Span{Name: trace.SpanMapAttempt, Cat: trace.CatMap,
				Start: att.startTime, End: now, Job: j.ID, Task: t.Index,
				Attempt: att.seq, Node: tt.node.ID, Speculative: att.speculative,
				Outcome: trace.OutcomeFailed})
			tr.Instant(trace.EventMapFailed, trace.CatMap, now, j.ID, t.Index, tt.node.ID)
			tr.Inc(trace.CounterMapFailed, 1)
		}
		switch {
		case t.Attempts >= jt.cfg.MaxTaskAttempts:
			jt.failJob(j, fmt.Sprintf("map task %d failed %d times: %v", t.Index, t.Attempts, err))
		case len(t.running) > 0:
			// A sibling (speculative) attempt is still going; let it
			// finish the task instead of requeueing.
		default:
			// Requeue for re-execution elsewhere.
			t.enqueued = jt.eng.Now()
			j.pendingMaps = append(j.pendingMaps, t)
		}
		jt.assign(tt)
		return
	}

	t.completed = true
	// Kill any racing sibling attempts; this one won.
	for len(t.running) > 0 {
		jt.killAttempt(t.running[0])
	}

	if rp != nil {
		// Delta-shuffle hit: the split's output is already partitioned
		// (and each partition stably sorted) in the resident store;
		// reference the shared runs directly instead of re-partitioning.
		// Only the node tag is per-job — chunk content and byte counts
		// are identical to what the baseline build would produce, so
		// shuffle accounting and reduce input are unchanged.
		for p := range rp.chunks {
			if len(rp.chunks[p].pairs) > 0 {
				j.mapOutput[p] = append(j.mapOutput[p], mapChunk{
					node: tt.node.ID, pairs: rp.chunks[p].pairs, bytes: rp.chunks[p].bytes})
			}
		}
		j.held = append(j.held, rp)
		j.Counters.MapOutputRecords += rp.records
		j.Counters.MapOutputBytes += rp.bytes
		j.Counters.mergeUser(rp.user)
		jt.tracer.Inc(trace.CounterDeltaShuffleHits, 1)
	} else {
		// Partition output by key and stash for the shuffle, tagged with
		// the producing node. byPart is indexed by partition (a map here
		// was allocation-heavy — see BenchmarkMapCompletion); chunks are
		// counted first so each backing array is allocated exactly once.
		pairs := out.Pairs()
		byPart := make([]mapChunk, j.numReduces)
		if j.numReduces == 1 {
			c := &byPart[0]
			c.node = tt.node.ID
			c.pairs = append(make([]KeyValue, 0, len(pairs)), pairs...)
			c.bytes = out.Bytes()
		} else {
			counts := make([]int, j.numReduces)
			for _, kv := range pairs {
				counts[partition(kv.Key, j.numReduces)]++
			}
			for p, n := range counts {
				if n > 0 {
					byPart[p] = mapChunk{node: tt.node.ID, pairs: make([]KeyValue, 0, n)}
				}
			}
			for _, kv := range pairs {
				c := &byPart[partition(kv.Key, j.numReduces)]
				c.pairs = append(c.pairs, kv)
				c.bytes += int64(len(kv.Key) + kv.Value.EncodedSize())
			}
		}
		if j.resident {
			// Sort each partition's run in place and admit the part; the
			// job's own chunks reference the same arrays, so the store
			// and the shuffle share one copy. If a concurrent runtime
			// admitted this split first, its (identical) part wins and
			// this job still uses the local arrays.
			store := jt.cfg.ResidentStore
			part := newResidentPart(
				residentKey{t.Split.Block.Source, jt.effMemo(j), j.numReduces},
				t.Split.Block, byPart, out)
			part, evicted := store.admit(part)
			j.held = append(j.held, part)
			if tr := jt.tracer; tr.Enabled() {
				tr.Inc(trace.CounterResidentStores, 1)
				tr.Inc(trace.CounterResidentEvicted, int64(evicted))
				st := store.Stats()
				tr.SetGauge(trace.GaugeResidentBytes, float64(st.ResidentBytes))
				tr.SetGauge(trace.GaugePinnedBytes, float64(st.PinnedBytes))
			}
		}
		for p := range byPart {
			if len(byPart[p].pairs) > 0 {
				j.mapOutput[p] = append(j.mapOutput[p], byPart[p])
			}
		}
		j.Counters.MapOutputRecords += int64(out.Len())
		j.Counters.MapOutputBytes += out.Bytes()
		j.Counters.mergeUser(out.UserCounters())
		// The collector's pairs were copied into the chunks above;
		// recycle its backing array unless it is shared — an async-scan
		// result may be held by the cache or a singleflight future, and
		// the inline path memoises when a cache is configured.
		if scan == nil && (jt.cfg.MapOutputCache == nil || j.Spec.MemoKey == "") {
			recycleCollector(out)
		}
	}

	// Input accounting matches what the attempt's read phase charged:
	// the effective record/byte counts of the job's input path
	// (scanCharge is pure, so recomputing it here agrees with launch).
	ch := jt.scanCharge(j, t.Split)
	j.Counters.MapInputRecords += ch.records
	j.Counters.BytesRead += int64(ch.bytes)
	j.Counters.CompletedMaps++
	j.mapDurations = append(j.mapDurations, jt.eng.Now()-att.startTime)
	if att.local {
		j.Counters.LocalMaps++
		jt.totalLocalMaps++
	} else {
		j.Counters.NonLocalMaps++
		jt.totalNonLocalMaps++
	}

	jt.emit(TaskEvent{Type: EventMapFinished, JobID: j.ID, TaskIndex: t.Index,
		Node: tt.node.ID, Attempt: t.Attempts, Speculative: att.speculative})
	if tr := jt.tracer; tr.Enabled() {
		now := jt.eng.Now()
		tr.Record(trace.Span{Name: trace.SpanMapAttempt, Cat: trace.CatMap,
			Start: att.startTime, End: now, Job: j.ID, Task: t.Index,
			Attempt: att.seq, Node: tt.node.ID, Speculative: att.speculative,
			Outcome: trace.OutcomeOK})
		tr.Observe(trace.HistMapDuration, now-att.startTime)
		if att.local {
			tr.Inc(trace.CounterMapLocal, 1)
		} else {
			tr.Inc(trace.CounterMapNonLocal, 1)
		}
	}
	jt.maybeStartReducePhase(j)
	// Out-of-band scheduling opportunity: the freed slot can be reused
	// without waiting for the next periodic heartbeat.
	jt.assign(tt)
}

// execMapper executes the user's map logic over the split, consulting
// the memoization cache first for jobs that declare a MemoKey. The
// simulated I/O and CPU for the attempt were already charged by the
// phase chain, so a cache hit only skips the real record scan.
func (jt *JobTracker) execMapper(t *MapTask) (*Collector, error) {
	if cache, key := jt.cfg.MapOutputCache, jt.effMemo(t.Job); cache != nil && key != "" {
		src := t.Split.Block.Source
		if out, ok := cache.lookup(src, key); ok {
			jt.tracer.Inc(trace.CounterMemoHits, 1)
			return out, nil
		}
		jt.tracer.Inc(trace.CounterMemoMisses, 1)
		out, err := jt.runMapper(t)
		if err == nil {
			cache.store(src, key, out)
		}
		return out, err
	}
	return jt.runMapper(t)
}

// runMapper executes the user's map logic over the split for real,
// inline on the simulator thread. The scanned source is the job's
// input-path view of the split (the pruned view under skip/index).
func (jt *JobTracker) runMapper(t *MapTask) (*Collector, error) {
	return scanSplit(t.Job.Spec, t.Job.Conf, t.Index, jt.scanSource(t.Job, t.Split))
}

// scanSplit executes the user's map logic (and combiner) over one
// split. It is a pure function of its arguments — all of them fixed
// when a map attempt's phase chain starts — so the scan executor may
// run it on a pool worker concurrently with the simulation; the inline
// path calls it on the simulator thread.
func scanSplit(spec JobSpec, conf *JobConf, splitIndex int, src data.Source) (*Collector, error) {
	mapper := spec.NewMapper(conf)
	if mapper == nil {
		return nil, fmt.Errorf("mapreduce: NewMapper returned nil")
	}
	ctx := &TaskContext{Conf: conf, SplitIndex: splitIndex, Source: src}
	out := newCollector()

	if sm, ok := mapper.(SplitMapper); ok {
		if err := sm.MapSplit(ctx, out); err != nil {
			recycleCollector(out)
			return nil, err
		}
		return combine(spec, conf, out)
	}

	if su, ok := mapper.(SetupMapper); ok {
		if err := su.Setup(ctx); err != nil {
			recycleCollector(out)
			return nil, err
		}
	}
	var scanErr error
	src.Scan(func(rec data.Record) bool {
		if err := mapper.Map(rec, out); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		recycleCollector(out)
		return nil, scanErr
	}
	if su, ok := mapper.(SetupMapper); ok {
		if err := su.Cleanup(out); err != nil {
			recycleCollector(out)
			return nil, err
		}
	}
	return combine(spec, conf, out)
}

// combine runs the job's combiner (when configured) over one map
// task's output, grouping by key, and returns the combined collector.
// User counters survive the combine; the pre-combine collector is
// recycled once its pairs have been copied out.
func combine(spec JobSpec, conf *JobConf, out *Collector) (*Collector, error) {
	if spec.NewCombiner == nil || out.Len() == 0 {
		return out, nil
	}
	combiner := spec.NewCombiner(conf)
	if combiner == nil {
		return out, nil
	}
	pairs := append([]KeyValue(nil), out.Pairs()...)
	sortPairsStable(pairs)
	combined := newCollector()
	combined.counters = out.counters
	out.counters = nil // ownership moved to combined
	recycleCollector(out)
	for i := 0; i < len(pairs); {
		k := pairs[i].Key
		var vals []data.Record
		for i < len(pairs) && pairs[i].Key == k {
			vals = append(vals, pairs[i].Value)
			i++
		}
		if err := combiner.Reduce(k, vals, combined); err != nil {
			return nil, fmt.Errorf("combiner: %w", err)
		}
	}
	return combined, nil
}

// launchReduce runs a reduce attempt: slot occupied → startup → shuffle
// (remote chunks over the network) → sort CPU → user reducer → output
// write to local disk → completion.
func (jt *JobTracker) launchReduce(tt *TaskTracker, t *ReduceTask) {
	j := t.Job
	for i, x := range j.pendingReduces {
		if x == t {
			j.pendingReduces = append(j.pendingReduces[:i], j.pendingReduces[i+1:]...)
			break
		}
	}
	j.runningReduces[t] = struct{}{}
	t.Attempts++
	t.Node = tt.node.ID
	tt.changeReduceSlots(+1)
	jt.occupiedReduceSlots++
	jt.emit(TaskEvent{Type: EventReduceStarted, JobID: j.ID, TaskIndex: t.Index,
		Node: tt.node.ID, Attempt: t.Attempts})

	chunks := j.mapOutput[t.Index]
	var shuffleBytes, totalPairs int64
	for _, c := range chunks {
		totalPairs += int64(len(c.pairs))
		if c.node != tt.node.ID {
			shuffleBytes += c.bytes
		}
	}
	costs := jt.cfg.Costs

	// Phase spans: mark(name) closes the interval elapsed since the
	// previous mark under that name, walking startup → shuffle → sort →
	// reduce CPU → output write as each stage's continuation fires.
	tr := jt.tracer
	attStart := jt.eng.Now()
	attNo := t.Attempts
	phaseT := attStart
	mark := func(name string) {
		if !tr.Enabled() {
			return
		}
		now := jt.eng.Now()
		tr.Record(trace.Span{Name: name, Cat: trace.CatReduce, Start: phaseT, End: now,
			Job: j.ID, Task: t.Index, Attempt: attNo, Node: tt.node.ID})
		phaseT = now
	}

	finish := func() {
		mark(trace.SpanOutputWrite)
		if tr.Enabled() {
			now := jt.eng.Now()
			tr.Record(trace.Span{Name: trace.SpanReduceAttempt, Cat: trace.CatReduce,
				Start: attStart, End: now, Job: j.ID, Task: t.Index, Attempt: attNo,
				Node: tt.node.ID, Outcome: trace.OutcomeOK})
			tr.Observe(trace.HistReduceDuration, now-attStart)
		}
		jt.finishReduce(tt, t)
	}

	writeOutput := func(outBytes int64) func() {
		return func() {
			mark(trace.SpanReduceCPU)
			// Output written to one of the node's disks (round-robin by
			// task index).
			disk := tt.node.Disks[t.Index%len(tt.node.Disks)]
			disk.Submit(float64(outBytes), finish)
		}
	}
	runReducer := func() {
		mark(trace.SpanSort)
		out, err := jt.execReducer(t, chunks)
		if err != nil {
			tr.Record(trace.Span{Name: trace.SpanReduceAttempt, Cat: trace.CatReduce,
				Start: attStart, End: jt.eng.Now(), Job: j.ID, Task: t.Index, Attempt: attNo,
				Node: tt.node.ID, Outcome: trace.OutcomeFailed})
			jt.failJob(j, fmt.Sprintf("reduce task %d failed: %v", t.Index, err))
			tt.changeReduceSlots(-1)
			jt.occupiedReduceSlots--
			delete(j.runningReduces, t)
			jt.assign(tt)
			return
		}
		t.Job.Counters.ReduceInputRecs += totalPairs
		t.Job.Counters.ReduceOutputRecs += int64(out.Len())
		t.Job.Counters.mergeUser(out.UserCounters())
		j.output = append(j.output, out.Pairs()...)
		// Reduce CPU for the user function, then the output write. The
		// collector's pairs were copied into j.output; recycle it.
		work := float64(totalPairs) * costs.ReduceCPUPerRecordS
		outBytes := out.Bytes()
		recycleCollector(out)
		tt.node.CPU.Submit(work, writeOutput(outBytes))
	}
	sortPhase := func() {
		mark(trace.SpanShuffle)
		work := float64(totalPairs) * costs.SortCPUPerRecordS
		tt.node.CPU.Submit(work, runReducer)
	}
	shufflePhase := func() {
		mark(trace.SpanStartup)
		j.Counters.ShuffleBytes += shuffleBytes
		jt.cluster.Network.Submit(float64(shuffleBytes), sortPhase)
	}
	jt.eng.After(costs.TaskStartupS, shufflePhase)
}

// execReducer groups the partition's pairs by key and runs the user's
// reduce logic for real.
func (jt *JobTracker) execReducer(t *ReduceTask, chunks []mapChunk) (*Collector, error) {
	j := t.Job
	var reducer Reducer
	if j.Spec.NewReducer != nil {
		reducer = j.Spec.NewReducer(j.Conf)
	}
	if reducer == nil {
		reducer = IdentityReducer
	}
	out := newCollector()
	if j.resident {
		// Memory engine mode: every chunk is a stably-sorted resident
		// run, so a tie-breaking merge replaces the O(n log n) stable
		// sort, and one exactly-sized values buffer replaces the
		// per-group append chains. The values slice handed to Reduce is
		// valid only for the duration of the call (Hadoop's iterator
		// contract) and capacity-capped so an appending reducer
		// reallocates instead of scribbling on the buffer.
		var total int64
		for _, c := range chunks {
			total += int64(len(c.pairs))
		}
		pairs := mergeSortedChunks(chunks, total)
		valsBuf := make([]data.Record, len(pairs))
		for i := range pairs {
			valsBuf[i] = pairs[i].Value
		}
		for i := 0; i < len(pairs); {
			k := pairs[i].Key
			end := i + 1
			for end < len(pairs) && pairs[end].Key == k {
				end++
			}
			if err := reducer.Reduce(k, valsBuf[i:end:end], out); err != nil {
				return nil, err
			}
			i = end
		}
		return out, nil
	}
	pairs := sortPairs(chunks)
	for i := 0; i < len(pairs); {
		k := pairs[i].Key
		var vals []data.Record
		for i < len(pairs) && pairs[i].Key == k {
			vals = append(vals, pairs[i].Value)
			i++
		}
		if err := reducer.Reduce(k, vals, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// finishReduce reports a reduce completion and finalises the job when
// all partitions are done.
func (jt *JobTracker) finishReduce(tt *TaskTracker, t *ReduceTask) {
	j := t.Job
	delete(j.runningReduces, t)
	tt.changeReduceSlots(-1)
	jt.occupiedReduceSlots--
	if j.Done() {
		jt.assign(tt)
		return
	}
	j.reducesDone++
	jt.emit(TaskEvent{Type: EventReduceFinished, JobID: j.ID, TaskIndex: t.Index,
		Node: tt.node.ID, Attempt: t.Attempts})
	if j.reducesDone == j.numReduces {
		jt.completeJob(j)
	}
	jt.assign(tt)
}
