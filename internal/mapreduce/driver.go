package mapreduce

import "dynamicmr/internal/sim"

// RunUntilDone drives the engine until the job reaches a terminal state
// or the virtual deadline passes, and reports whether the job finished.
// Because heartbeats keep the event queue non-empty forever, drivers
// step the engine under a condition instead of calling Run.
func RunUntilDone(eng *sim.Engine, j *Job, deadline float64) bool {
	for !j.Done() && eng.Now() < deadline && eng.Step() {
	}
	return j.Done()
}

// RunAllUntilDone drives the engine until every listed job finishes or
// the deadline passes.
func RunAllUntilDone(eng *sim.Engine, jobs []*Job, deadline float64) bool {
	alldone := func() bool {
		for _, j := range jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	}
	for !alldone() && eng.Now() < deadline && eng.Step() {
	}
	return alldone()
}
