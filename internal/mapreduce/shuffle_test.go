package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dynamicmr/internal/data"
)

var shuffleSchema = data.NewSchema("seq")

func taggedPair(key string, seq int) KeyValue {
	return KeyValue{Key: key, Value: data.NewRecord(shuffleSchema, []data.Value{data.Int(int64(seq))})}
}

func pairSeq(kv KeyValue) int64 {
	return kv.Value.MustGet("seq").AsInt()
}

// TestSortPairsStableGolden pins the reduce input order for duplicate
// keys spread across map chunks: keys sort lexicographically and equal
// keys keep chunk-arrival order — exactly sort.SliceStable's contract,
// which sortPairsStable replaced.
func TestSortPairsStableGolden(t *testing.T) {
	// Three "chunks" concatenated in producing-task order, with key
	// collisions both within and across chunks.
	pairs := []KeyValue{
		// chunk from map 0
		taggedPair("b", 0), taggedPair("a", 1), taggedPair("b", 2),
		// chunk from map 1
		taggedPair("a", 3), taggedPair("c", 4), taggedPair("a", 5),
		// chunk from map 2
		taggedPair("b", 6), taggedPair("a", 7),
	}
	sortPairsStable(pairs)
	var got []string
	for _, kv := range pairs {
		got = append(got, fmt.Sprintf("%s%d", kv.Key, pairSeq(kv)))
	}
	want := "a1 a3 a5 a7 b0 b2 b6 c4"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("reduce input order changed:\n got %s\nwant %s", s, want)
	}
}

// TestSortPairsStableMatchesSliceStable cross-checks sortPairsStable
// against the sort.SliceStable implementation it replaced, over inputs
// dense with duplicate keys.
func TestSortPairsStableMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := rng.Intn(400)
		pairs := make([]KeyValue, n)
		ref := make([]KeyValue, n)
		for i := range pairs {
			pairs[i] = taggedPair(fmt.Sprintf("k%02d", rng.Intn(8)), i)
			ref[i] = pairs[i]
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Key < ref[j].Key })
		sortPairsStable(pairs)
		for i := range pairs {
			if pairs[i].Key != ref[i].Key || pairSeq(pairs[i]) != pairSeq(ref[i]) {
				t.Fatalf("round %d: position %d = %s/%d, want %s/%d",
					round, i, pairs[i].Key, pairSeq(pairs[i]), ref[i].Key, pairSeq(ref[i]))
			}
		}
	}
}

func TestCollectorRecycling(t *testing.T) {
	c := newCollector()
	c.Emit("k", taggedPair("k", 1).Value)
	c.Inc("counter", 3)
	recycleCollector(c)
	c2 := newCollector()
	if len(c2.pairs) != 0 || c2.bytes != 0 || c2.counters != nil {
		t.Fatalf("recycled collector not reset: %+v", c2)
	}
	recycleCollector(nil) // must not panic
}
