package mapreduce

import "dynamicmr/internal/trace"

// UtilizationPoint is one interval-averaged utilization reading in the
// units the paper reports (§V-D): CPU percent of total core capacity,
// per-disk KB/s, and percent of map slots occupied.
type UtilizationPoint struct {
	// Time is the interval's end (virtual seconds).
	Time             float64
	CPUUtilPct       float64
	DiskReadKBs      float64
	SlotOccupancyPct float64
}

// UtilizationCursor turns the cluster's monotonic service integrals
// into interval averages: each Advance reports the mean utilization
// since the previous Advance (or since construction). It is the single
// implementation behind both the tracer's telemetry poll and
// metrics.Sampler's standalone mode, so the two can never drift.
type UtilizationCursor struct {
	jt                                 *JobTracker
	lastT, lastCPU, lastDisk, lastSlot float64
}

// NewUtilizationCursor starts a cursor with its baseline at now.
func (jt *JobTracker) NewUtilizationCursor() *UtilizationCursor {
	return &UtilizationCursor{
		jt:       jt,
		lastT:    jt.eng.Now(),
		lastCPU:  jt.cluster.CPUUsedIntegral(),
		lastDisk: jt.cluster.DiskUsedIntegral(),
		lastSlot: jt.MapSlotOccupancyIntegral(),
	}
}

// Advance reads the integrals and returns the interval average since
// the previous call; ok is false when no virtual time has passed.
func (c *UtilizationCursor) Advance() (p UtilizationPoint, ok bool) {
	jt := c.jt
	now := jt.eng.Now()
	dt := now - c.lastT
	cpu := jt.cluster.CPUUsedIntegral()
	disk := jt.cluster.DiskUsedIntegral()
	slot := jt.MapSlotOccupancyIntegral()
	if dt > 0 {
		ok = true
		p = UtilizationPoint{
			Time:             now,
			CPUUtilPct:       100 * (cpu - c.lastCPU) / (jt.cluster.CPUCapacity() * dt),
			DiskReadKBs:      (disk - c.lastDisk) / dt / float64(jt.cluster.Cfg.TotalDisks()) / 1024,
			SlotOccupancyPct: 100 * (slot - c.lastSlot) / (float64(jt.cluster.Cfg.TotalMapSlots()) * dt),
		}
	}
	c.lastT, c.lastCPU, c.lastDisk, c.lastSlot = now, cpu, disk, slot
	return p, ok
}

// startTelemetry launches the tracer's periodic utilization poll; it
// runs alongside the heartbeats for the life of the engine and is the
// event stream metrics.Sampler consumes when tracing is enabled.
func (jt *JobTracker) startTelemetry() {
	if !jt.tracer.Enabled() {
		return
	}
	interval := jt.cfg.Trace.SampleInterval()
	cur := jt.NewUtilizationCursor()
	var tick func()
	tick = func() {
		if p, ok := cur.Advance(); ok {
			jt.tracer.RecordMetricSample(trace.MetricSample{
				Time:             p.Time,
				CPUUtilPct:       p.CPUUtilPct,
				DiskReadKBs:      p.DiskReadKBs,
				SlotOccupancyPct: p.SlotOccupancyPct,
			})
		}
		jt.eng.After(interval, tick)
	}
	jt.eng.After(interval, tick)
}
