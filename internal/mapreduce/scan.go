package mapreduce

import (
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/trace"
)

// This file is the runtime's bridge to the scan executor
// (internal/mapreduce/executor): pure map record scans run on a worker
// pool off the simulator thread, overlapping real compute with the
// discrete-event simulation.
//
// Determinism contract:
//
//   - Purity gate: only jobs that declare a MemoKey — the existing
//     promise that a split's map output is a function of (source,
//     MemoKey) alone — are submitted. Impure jobs execute inline at
//     completion time, exactly as without a pool.
//   - Event-order join: the result is consumed only when the attempt's
//     completion event fires, on the simulator goroutine, so all job
//     state mutates in event order regardless of when workers finish.
//   - Virtual time is never advanced by real time: a join that has to
//     wait blocks the host goroutine inside sim.Engine.RealBlock, which
//     asserts the virtual clock unchanged.
//
// The MapOutputCache sits behind the executor: a submit first consults
// the cache (hit → pre-resolved future), and the pool's singleflight
// dedupes concurrent attempts on the same (source, MemoKey) — a
// speculative twin within a cell and colliding cells of a parallel
// sweep all share one execution, whose output the closure memoises.

// submitScan dispatches the attempt's record scan to the scan executor
// when the map attempt's phase chain starts. It returns nil when the
// scan must instead run inline at completion (no pool configured, or
// the job made no purity declaration).
func (jt *JobTracker) submitScan(t *MapTask) *executor.Future {
	pool := jt.cfg.ScanExecutor
	memo := jt.effMemo(t.Job)
	if !pool.Enabled() || memo == "" {
		return nil // purity gate: impure jobs never enter the pool
	}
	src := t.Split.Block.Source
	cache := jt.cfg.MapOutputCache
	if cache != nil {
		if out, ok := cache.lookup(src, memo); ok {
			jt.tracer.Inc(trace.CounterMemoHits, 1)
			return executor.Resolved(out)
		}
		jt.tracer.Inc(trace.CounterMemoMisses, 1)
	}
	// The closure captures only values fixed when the phase chain
	// starts — the spec (user factories + MemoKey), the conf, the split
	// ordinal and the source (the input path's view of it for the scan;
	// the original for cache and singleflight identity). It runs on a
	// pool worker concurrently with the simulation, so it must not
	// touch mutable task or job state.
	spec, conf, idx := t.Job.Spec, t.Job.Conf, t.Index
	scanSrc := jt.scanSource(t.Job, t.Split)
	return pool.Submit(executor.Key{Source: src, Memo: memo}, func() (any, error) {
		out, err := scanSplit(spec, conf, idx, scanSrc)
		if err == nil && cache != nil {
			cache.store(src, memo, out)
		}
		return out, err
	})
}

// joinScan consumes an async scan's result at completion-event time,
// blocking (in real time only) when the scan is still running.
func (jt *JobTracker) joinScan(fut *executor.Future) (*Collector, error) {
	var out *Collector
	var err error
	join := func() {
		v, e := fut.Wait()
		if v != nil {
			out = v.(*Collector)
		}
		err = e
	}
	if fut.Ready() {
		join() // real compute beat simulated time; no stall
	} else {
		jt.tracer.Inc(trace.CounterScanStalls, 1)
		jt.eng.RealBlock(join)
	}
	jt.tracer.Inc(trace.CounterScanAsync, 1)
	return out, err
}
