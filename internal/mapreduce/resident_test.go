package mapreduce

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// newResidentRig builds a testRig whose JobTracker runs in memory
// engine mode over the given store (the store's memo doubles as the
// MapOutputCache, as NewJobTracker wires by default).
func newResidentRig(t *testing.T, store *ResidentStore) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := DefaultConfig()
	cfg.ResidentStore = store
	return &testRig{eng: eng, cl: cl, fs: dfs.New(cl), jt: NewJobTracker(cl, cfg, nil)}
}

// outputSignature flattens a job's output for byte-identity checks.
func outputSignature(j *Job) string {
	s := ""
	for _, kv := range j.Output() {
		s += fmt.Sprintf("%s=%v;", kv.Key, kv.Value)
	}
	return s
}

// runOK submits, drives and asserts success.
func runOK(t *testing.T, r *testRig, spec JobSpec, f *dfs.File) *Job {
	t.Helper()
	job := r.jt.Submit(spec, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e7) || job.State() != StateSucceeded {
		t.Fatalf("job: state=%v failure=%q", job.State(), job.Failure())
	}
	return job
}

// mustMatch asserts a memory-mode job is indistinguishable from its
// baseline twin (same rig geometry, same submission position): output
// bytes, virtual response time and counters. Two *successive* jobs on
// one rig legitimately differ (heartbeat phase), so the determinism
// contract is always checked mode-against-mode, position by position.
func mustMatch(t *testing.T, label string, baseline, mem *Job) {
	t.Helper()
	if want, got := outputSignature(baseline), outputSignature(mem); want != got {
		t.Fatalf("%s: memory mode changed output\nbaseline: %.200s\nmemory:   %.200s", label, want, got)
	}
	if baseline.ResponseTime() != mem.ResponseTime() {
		t.Fatalf("%s: memory mode changed virtual time: baseline %v, memory %v",
			label, baseline.ResponseTime(), mem.ResponseTime())
	}
	if want, got := fmt.Sprintf("%+v", baseline.Counters), fmt.Sprintf("%+v", mem.Counters); want != got {
		t.Fatalf("%s: counters diverged\nbaseline: %s\nmemory:   %s", label, want, got)
	}
}

// A second job over the same (source, MemoKey, reduces) must be served
// entirely from resident parts — no mapper constructions, no partition
// rebuilds — while staying byte-identical to a baseline rig replaying
// the same submission sequence.
func TestResidentStoreDeltaShuffle(t *testing.T) {
	srcs := makeSrcs(8, 100)
	var base, mem [2]*Job
	var execs atomic.Int64

	br := newRig(t, nil)
	fb, err := br.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		base[i] = runOK(t, br, countingSpec("res|v1", &execs), fb)
	}

	execs.Store(0)
	store := NewResidentStore(nil, 0)
	mr := newResidentRig(t, store)
	fm, err := mr.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem[0] = runOK(t, mr, countingSpec("res|v1", &execs), fm)
	st := store.Stats()
	if st.Stores != 8 || st.Misses != 8 || st.Hits != 0 {
		t.Fatalf("after job1: stats %+v, want 8 stores / 8 misses / 0 hits", st)
	}
	if st.LiveRefs != 0 {
		t.Fatalf("job1 leaked %d part references", st.LiveRefs)
	}
	if st.ResidentBytes <= 0 || st.Parts != 8 {
		t.Fatalf("after job1: parts=%d residentBytes=%d", st.Parts, st.ResidentBytes)
	}
	if got := fm.PinnedBlocks(); got != 8 {
		t.Fatalf("resident splits pinned %d blocks, want 8", got)
	}

	mem[1] = runOK(t, mr, countingSpec("res|v1", &execs), fm)
	if got := execs.Load(); got != 8 {
		t.Fatalf("warm job re-ran mappers: executions = %d, want 8", got)
	}
	st = store.Stats()
	if st.Hits != 8 {
		t.Fatalf("after job2: hits = %d, want 8 (every map served resident)", st.Hits)
	}
	if st.LiveRefs != 0 {
		t.Fatalf("job2 leaked %d part references", st.LiveRefs)
	}
	for i := range base {
		mustMatch(t, fmt.Sprintf("job %d", i+1), base[i], mem[i])
	}
}

// Multi-reduce jobs with overlapping per-chunk key ranges exercise the
// k-way merge path; output and virtual timings must still match the
// baseline rig position by position.
func TestResidentModeMatchesBaseline(t *testing.T) {
	srcs := makeSrcs(10, 60)
	spec := func() JobSpec {
		conf := NewJobConf()
		conf.SetInt(ConfNumReduces, 3)
		return JobSpec{
			Conf:      conf,
			NewMapper: func(*JobConf) Mapper { return countMapper{} },
			MemoKey:   "res|merge",
		}
	}

	br := newRig(t, nil)
	fb, err := br.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := []*Job{runOK(t, br, spec(), fb), runOK(t, br, spec(), fb)}

	store := NewResidentStore(nil, 0)
	mr := newResidentRig(t, store)
	fm, err := mr.fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold := runOK(t, mr, spec(), fm)
	warm := runOK(t, mr, spec(), fm)
	if store.Stats().Hits == 0 {
		t.Fatal("warm job hit no resident parts")
	}
	mustMatch(t, "cold", base[0], cold)
	mustMatch(t, "warm", base[1], warm)
}

// A byte cap evicts cold parts without ever changing results: evicted
// parts are simply rebuilt, and the job sequence stays byte-identical
// to a capless — and a storeless — run.
func TestResidentStoreEviction(t *testing.T) {
	srcs := makeSrcs(8, 100)
	keys := []string{"res|e1", "res|e2", "res|e1"}
	var execs atomic.Int64

	run := func(store *ResidentStore) []*Job {
		var r *testRig
		if store != nil {
			r = newResidentRig(t, store)
		} else {
			r = newRig(t, nil)
		}
		f, err := r.fs.Create("in", srcs, 1)
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]*Job, len(keys))
		for i, k := range keys {
			jobs[i] = runOK(t, r, countingSpec(k, &execs), f)
		}
		return jobs
	}

	base := run(nil)
	capped := NewResidentStore(nil, 1) // cap below any part: everything unreferenced is evicted
	jobs := run(capped)
	st := capped.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte cap: %+v", st)
	}
	if st.LiveRefs != 0 {
		t.Fatalf("leaked %d part references", st.LiveRefs)
	}
	for i := range base {
		mustMatch(t, fmt.Sprintf("job %d (%s)", i+1, keys[i]), base[i], jobs[i])
	}
}

// Release of the last session claim purges every part and unpins every
// block — the leak test behind Session.Close/Cluster.Close.
func TestResidentStoreReleasePurges(t *testing.T) {
	store := NewResidentStore(nil, 0)
	store.Retain()
	r := newResidentRig(t, store)
	f := r.makeFile(t, "in", 6, 50)
	var execs atomic.Int64
	runOK(t, r, countingSpec("res|leak", &execs), f)

	if store.Len() == 0 || f.PinnedBlocks() == 0 {
		t.Fatalf("precondition: nothing resident (parts=%d pinned=%d)", store.Len(), f.PinnedBlocks())
	}
	store.Release()
	st := store.Stats()
	if st.Parts != 0 || st.ResidentBytes != 0 || st.PinnedBytes != 0 || st.PinnedBlocks != 0 {
		t.Fatalf("release did not purge: %+v", st)
	}
	if got := f.PinnedBlocks(); got != 0 {
		t.Fatalf("%d blocks still pinned after release", got)
	}
	if st.LiveRefs != 0 || st.Sessions != 0 {
		t.Fatalf("refs/sessions leaked: %+v", st)
	}
	store.Release() // idempotent beyond zero
	// The store still works after a purge: parts are rebuilt on demand.
	job := runOK(t, r, countingSpec("res|leak", &execs), f)
	if len(job.Output()) != 300 {
		t.Fatalf("post-purge job output = %d, want 300", len(job.Output()))
	}
}
