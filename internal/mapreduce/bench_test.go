package mapreduce

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// BenchmarkStaticJob measures simulating one 40-map static job end to
// end (scheduling, physics, shuffle, reduce).
func BenchmarkStaticJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, cluster.PaperConfig())
		fs := dfs.New(cl)
		schema := data.NewSchema("V")
		var srcs []data.Source
		for p := 0; p < 40; p++ {
			recs := make([]data.Record, 100)
			for j := range recs {
				recs[j] = data.NewRecord(schema, []data.Value{data.Int(int64(j))})
			}
			srcs = append(srcs, data.NewSliceSource(schema, recs))
		}
		f, err := fs.Create("in", srcs, 1)
		if err != nil {
			b.Fatal(err)
		}
		jt := NewJobTracker(cl, DefaultConfig(), nil)
		job := jt.Submit(JobSpec{
			NewMapper: func(*JobConf) Mapper {
				return MapperFunc(func(rec data.Record, out *Collector) error {
					out.Emit("k", rec)
					return nil
				})
			},
		}, SplitsForFile(f))
		if !RunUntilDone(eng, job, 1e6) {
			b.Fatal("job stuck")
		}
	}
}

// BenchmarkMapCompletion isolates the map-completion hot path — the
// record scan, combine sort, and per-partition shuffle chunking — that
// the byPart slice, pooled collectors, and sortPairsStable target.
// Compare allocs/op against the pre-refactor per-task map allocation.
func BenchmarkMapCompletion(b *testing.B) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	schema := data.NewSchema("K", "V")
	var srcs []data.Source
	for p := 0; p < 8; p++ {
		recs := make([]data.Record, 500)
		for j := range recs {
			recs[j] = data.NewRecord(schema, []data.Value{
				data.Int(int64(j % 16)), data.Int(int64(j)),
			})
		}
		srcs = append(srcs, data.NewSliceSource(schema, recs))
	}
	f, err := fs.Create("in", srcs, 1)
	if err != nil {
		b.Fatal(err)
	}
	jt := NewJobTracker(cl, DefaultConfig(), nil)
	conf := NewJobConf()
	conf.SetInt(ConfNumReduces, 4)
	spec := JobSpec{
		Conf: conf,
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(rec data.Record, out *Collector) error {
				out.Emit(rec.MustGet("K").String(), rec)
				return nil
			})
		},
		NewReducer: func(*JobConf) Reducer { return IdentityReducer },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := jt.Submit(spec, SplitsForFile(f))
		if !RunUntilDone(eng, job, eng.Now()+1e6) {
			b.Fatal("job stuck")
		}
	}
}

// BenchmarkDeltaShuffle measures a repeat job served from a resident
// store: every map attempt hits an already-partitioned, pre-sorted
// part, so the per-iteration cost is the delta-shuffle hot path —
// chunk handoff, k-way reduce merge, no scan and no re-sort. Compare
// ns/op and allocs/op against BenchmarkMapCompletion, the cold path
// over the same geometry.
func BenchmarkDeltaShuffle(b *testing.B) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	schema := data.NewSchema("K", "V")
	var srcs []data.Source
	for p := 0; p < 8; p++ {
		recs := make([]data.Record, 500)
		for j := range recs {
			recs[j] = data.NewRecord(schema, []data.Value{
				data.Int(int64(j % 16)), data.Int(int64(j)),
			})
		}
		srcs = append(srcs, data.NewSliceSource(schema, recs))
	}
	f, err := fs.Create("in", srcs, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ResidentStore = NewResidentStore(nil, 0)
	jt := NewJobTracker(cl, cfg, nil)
	conf := NewJobConf()
	conf.SetInt(ConfNumReduces, 4)
	spec := JobSpec{
		Conf: conf,
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(rec data.Record, out *Collector) error {
				out.Emit(rec.MustGet("K").String(), rec)
				return nil
			})
		},
		NewReducer: func(*JobConf) Reducer { return IdentityReducer },
		MemoKey:    "bench|delta",
	}
	// Warm the store so every timed iteration runs resident.
	warm := jt.Submit(spec, SplitsForFile(f))
	if !RunUntilDone(eng, warm, eng.Now()+1e6) {
		b.Fatal("warm job stuck")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := jt.Submit(spec, SplitsForFile(f))
		if !RunUntilDone(eng, job, eng.Now()+1e6) {
			b.Fatal("job stuck")
		}
	}
}

// BenchmarkSkipScan measures a fingerprinted job reading through the
// zone-map skip path: every attempt consults block statistics, scans
// the pruned match-admitting view (20 of 100 records per block here)
// and is charged only for the sub-blocks it read. Compare against
// BenchmarkFullScanStats, the same job forced down the full path, to
// see the pay-for-what-you-read win in wall clock and allocations.
func BenchmarkSkipScan(b *testing.B) {
	benchScanPath(b, InputPathSkip)
}

// BenchmarkFullScanStats is BenchmarkSkipScan's control: identical
// stat-bearing input, full read path.
func BenchmarkFullScanStats(b *testing.B) {
	benchScanPath(b, InputPathFull)
}

func benchScanPath(b *testing.B, mode string) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	srcs := make([]data.Source, 8)
	for p := range srcs {
		srcs[p] = newFakeStatSrc(int64(p) * 1000)
	}
	f, err := fs.Create("statin", srcs, 1)
	if err != nil {
		b.Fatal(err)
	}
	jt := NewJobTracker(cl, DefaultConfig(), nil)
	conf := NewJobConf()
	conf.Set(ConfInputPath, mode)
	conf.SetInt(ConfNumReduces, 4)
	spec := JobSpec{
		Conf: conf,
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(rec data.Record, out *Collector) error {
				out.Emit(rec.MustGet("K").String(), rec)
				return nil
			})
		},
		NewReducer:        func(*JobConf) Reducer { return IdentityReducer },
		FilterFingerprint: testFP,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := jt.Submit(spec, SplitsForFile(f))
		if !RunUntilDone(eng, job, eng.Now()+1e6) {
			b.Fatal("job stuck")
		}
	}
}

func BenchmarkHeartbeatScheduling(b *testing.B) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	jt := NewJobTracker(cl, DefaultConfig(), nil)
	jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper {
		return MapperFunc(func(data.Record, *Collector) error { return nil })
	}}, nil)
	b.ResetTimer()
	deadline := 0.0
	for i := 0; i < b.N; i++ {
		deadline += 1
		eng.RunUntil(deadline)
	}
}
