package mapreduce

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// BenchmarkStaticJob measures simulating one 40-map static job end to
// end (scheduling, physics, shuffle, reduce).
func BenchmarkStaticJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, cluster.PaperConfig())
		fs := dfs.New(cl)
		schema := data.NewSchema("V")
		var srcs []data.Source
		for p := 0; p < 40; p++ {
			recs := make([]data.Record, 100)
			for j := range recs {
				recs[j] = data.NewRecord(schema, []data.Value{data.Int(int64(j))})
			}
			srcs = append(srcs, data.NewSliceSource(schema, recs))
		}
		f, err := fs.Create("in", srcs, 1)
		if err != nil {
			b.Fatal(err)
		}
		jt := NewJobTracker(cl, DefaultConfig(), nil)
		job := jt.Submit(JobSpec{
			NewMapper: func(*JobConf) Mapper {
				return MapperFunc(func(rec data.Record, out *Collector) error {
					out.Emit("k", rec)
					return nil
				})
			},
		}, SplitsForFile(f))
		if !RunUntilDone(eng, job, 1e6) {
			b.Fatal("job stuck")
		}
	}
}

func BenchmarkHeartbeatScheduling(b *testing.B) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	jt := NewJobTracker(cl, DefaultConfig(), nil)
	jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper {
		return MapperFunc(func(data.Record, *Collector) error { return nil })
	}}, nil)
	b.ResetTimer()
	deadline := 0.0
	for i := 0; i < b.N; i++ {
		deadline += 1
		eng.RunUntil(deadline)
	}
}
