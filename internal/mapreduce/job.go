package mapreduce

import (
	"fmt"
	"sort"
)

// JobState is the lifecycle state of a job.
type JobState uint8

// Job lifecycle. A dynamic job stays in the map phase until its Input
// Provider declares end-of-input AND all scheduled maps finish; only
// then does the reduce phase begin (§III-A).
const (
	// StateMapPhase: maps pending/running, or awaiting end-of-input.
	StateMapPhase JobState = iota
	// StateReducePhase: all maps done and input closed; reduces running.
	StateReducePhase
	// StateSucceeded: all reduces finished.
	StateSucceeded
	// StateFailed: a task exhausted its attempts.
	StateFailed
)

// String returns the state name.
func (s JobState) String() string {
	switch s {
	case StateMapPhase:
		return "MAP"
	case StateReducePhase:
		return "REDUCE"
	case StateSucceeded:
		return "SUCCEEDED"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("JobState(%d)", uint8(s))
	}
}

// Counters aggregates the statistics Hadoop reports for a job; the
// paper's Input Provider consumes MapInputRecords and MapOutputRecords
// to estimate selectivity.
type Counters struct {
	MapInputRecords   int64
	MapOutputRecords  int64
	MapOutputBytes    int64
	CompletedMaps     int64
	FailedMapAttempts int64
	LocalMaps         int64
	NonLocalMaps      int64
	BytesRead         int64
	ShuffleBytes      int64
	ReduceInputRecs   int64
	ReduceOutputRecs  int64
	// SpeculativeLaunches counts backup attempts started; KilledAttempts
	// counts attempts cancelled mid-flight (race losers).
	SpeculativeLaunches int64
	KilledAttempts      int64
	// ScanBlocksRead / ScanBlocksSkipped count statistics sub-blocks
	// read and zone-map-skipped across the job's map attempts (every
	// attempt that reaches its read phase pays, like disk I/O). Under
	// the full input path nothing is ever skipped.
	ScanBlocksRead    int64
	ScanBlocksSkipped int64
	// User holds user-defined counters incremented by map/reduce
	// functions via Collector.Inc.
	User map[string]int64
}

// UserCounter returns a user-defined counter's value (0 if never
// incremented).
func (c *Counters) UserCounter(name string) int64 { return c.User[name] }

// mergeUser folds a task's user counters into the job's.
func (c *Counters) mergeUser(m map[string]int64) {
	if len(m) == 0 {
		return
	}
	if c.User == nil {
		c.User = make(map[string]int64, len(m))
	}
	for k, v := range m {
		c.User[k] += v
	}
}

// MapTask is one unit of map input: a split awaiting or undergoing
// processing, possibly by several racing attempts.
type MapTask struct {
	Job   *Job
	Index int // ordinal among the job's scheduled splits
	Split Split
	// Attempts counts launches so far (failures requeue the task;
	// speculation races a second attempt).
	Attempts int
	// Local records whether the latest attempt reads a node-local
	// replica.
	Local bool
	// Node is the node of the latest attempt, -1 when idle.
	Node int

	completed bool
	running   []*mapAttempt
	// enqueued is when the task last entered the pending queue (at
	// AddSplits or requeue-after-failure); queue-wait spans measure from
	// it to the next non-speculative launch.
	enqueued float64
}

// Completed reports whether some attempt of the task succeeded.
func (t *MapTask) Completed() bool { return t.completed }

// RunningAttempts returns the number of in-flight attempts.
func (t *MapTask) RunningAttempts() int { return len(t.running) }

// ReduceTask is one reduce partition's task.
type ReduceTask struct {
	Job      *Job
	Index    int
	Attempts int
	Node     int
}

// mapChunk is one completed map task's output destined for a reduce
// partition, tagged with the producing node for shuffle cost accounting.
type mapChunk struct {
	node  int
	pairs []KeyValue
	bytes int64
}

// Job is a submitted MapReduce job.
type Job struct {
	ID   int
	Spec JobSpec
	Conf *JobConf
	Name string
	User string

	// Dynamic jobs receive splits incrementally and must be closed via
	// EndOfInput before the reduce phase can start.
	Dynamic    bool
	endOfInput bool

	state      JobState
	numReduces int

	pendingMaps []*MapTask
	runningMaps map[*MapTask]struct{}
	scheduled   int // total splits handed to the job so far

	// mapOutput[r] collects chunks for reduce partition r.
	mapOutput      [][]mapChunk
	reduceTasks    []*ReduceTask
	pendingReduces []*ReduceTask
	runningReduces map[*ReduceTask]struct{}
	reducesDone    int

	output []KeyValue

	// resident is set at submission when the runtime has a ResidentStore
	// and the job declared a MemoKey: map completions then consult the
	// store for already-partitioned output, and every chunk in mapOutput
	// is a stably-sorted run (see execReducer's merge path). held are the
	// resident parts this job references, released at termination.
	resident bool
	held     []*residentPart

	// mapDurations records completed map attempt durations, feeding the
	// speculative-execution median.
	mapDurations []float64

	Counters Counters

	SubmitTime  float64
	MapDoneTime float64
	FinishTime  float64

	failure string
}

// State returns the job's lifecycle state.
func (j *Job) State() JobState { return j.state }

// Failure returns the failure description for StateFailed jobs.
func (j *Job) Failure() string { return j.failure }

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.state == StateSucceeded || j.state == StateFailed }

// EndOfInputDeclared reports whether input has been closed.
func (j *Job) EndOfInputDeclared() bool { return j.endOfInput }

// ScheduledMaps returns the number of splits handed to the job so far.
func (j *Job) ScheduledMaps() int { return j.scheduled }

// PendingMaps returns the count of splits awaiting a slot.
func (j *Job) PendingMaps() int { return len(j.pendingMaps) }

// RunningMaps returns the count of currently executing map tasks.
func (j *Job) RunningMaps() int { return len(j.runningMaps) }

// CompletedMaps returns the count of finished map tasks.
func (j *Job) CompletedMaps() int { return int(j.Counters.CompletedMaps) }

// NumReduces returns the reduce-task count.
func (j *Job) NumReduces() int { return j.numReduces }

// Output returns the job's reduce output (valid once Done).
func (j *Job) Output() []KeyValue { return j.output }

// ResponseTime returns FinishTime - SubmitTime (valid once Done).
func (j *Job) ResponseTime() float64 { return j.FinishTime - j.SubmitTime }

// localPendingTask returns a pending map task whose split has a replica
// on the node, or nil.
func (j *Job) localPendingTask(node int) *MapTask {
	for _, t := range j.pendingMaps {
		if _, ok := t.Split.Block.LocalTo(node); ok {
			return t
		}
	}
	return nil
}

// takePending removes and returns the given pending task.
func (j *Job) takePending(t *MapTask) {
	for i, x := range j.pendingMaps {
		if x == t {
			j.pendingMaps = append(j.pendingMaps[:i], j.pendingMaps[i+1:]...)
			return
		}
	}
	panic("mapreduce: task not pending")
}

// medianMapDuration returns the median completed-map duration once at
// least minDone maps finished.
func (j *Job) medianMapDuration(minDone int) (float64, bool) {
	n := len(j.mapDurations)
	if n < minDone || n == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), j.mapDurations...)
	sort.Float64s(sorted)
	return sorted[n/2], true
}

// mapPhaseComplete reports whether the reduce phase may begin: every
// scheduled map finished and (for dynamic jobs) end-of-input declared.
func (j *Job) mapPhaseComplete() bool {
	return j.endOfInput && len(j.pendingMaps) == 0 && len(j.runningMaps) == 0 &&
		j.state == StateMapPhase
}
