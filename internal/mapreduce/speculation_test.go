package mapreduce

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// stragglerRig builds a cluster where node 0 runs at 1/20th speed, and
// a job whose splits land evenly across nodes, so the splits placed on
// node 0 straggle badly.
func stragglerRig(t *testing.T, speculative bool) (*sim.Engine, *JobTracker, *Job) {
	t.Helper()
	cfg := cluster.PaperConfig()
	cfg.NodeSpeedFactors = make([]float64, cfg.Nodes)
	for i := range cfg.NodeSpeedFactors {
		cfg.NodeSpeedFactors[i] = 1
	}
	cfg.NodeSpeedFactors[0] = 0.05

	eng := sim.NewEngine()
	cl := cluster.New(eng, cfg)
	fs := dfs.New(cl)
	schema := data.NewSchema("V")
	var srcs []data.Source
	for b := 0; b < 40; b++ {
		recs := make([]data.Record, 5000)
		for i := range recs {
			recs[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, recs))
	}
	f, err := fs.Create("in", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultConfig()
	rc.SpeculativeExecution = speculative
	// CPU-dominated tasks (10s on a healthy node, 200s on the
	// straggler) so the slowdown threshold is actually crossed.
	rc.Costs.MapCPUPerRecordS = 2e-3
	jt := NewJobTracker(cl, rc, nil)
	job := jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(data.Record, *Collector) error { return nil })
		},
	}, SplitsForFile(f))
	return eng, jt, job
}

func TestNodeSpeedFactorValidation(t *testing.T) {
	cfg := cluster.PaperConfig()
	cfg.NodeSpeedFactors = []float64{1, 1}
	if err := cfg.Validate(); err == nil {
		t.Error("wrong-length speed factors accepted")
	}
	cfg.NodeSpeedFactors = make([]float64, 10)
	if err := cfg.Validate(); err == nil {
		t.Error("zero speed factor accepted")
	}
}

func TestSpeculationRescuesStragglers(t *testing.T) {
	engOff, _, jobOff := stragglerRig(t, false)
	if !RunUntilDone(engOff, jobOff, 1e7) {
		t.Fatal("baseline job stuck")
	}
	engOn, _, jobOn := stragglerRig(t, true)
	if !RunUntilDone(engOn, jobOn, 1e7) {
		t.Fatal("speculative job stuck")
	}
	if jobOn.State() != StateSucceeded {
		t.Fatalf("state = %v", jobOn.State())
	}
	if jobOn.Counters.SpeculativeLaunches == 0 {
		t.Fatal("no speculative attempts launched despite a 20x straggler")
	}
	// Backup attempts must make the job materially faster.
	if jobOn.ResponseTime() >= jobOff.ResponseTime()*0.8 {
		t.Fatalf("speculation did not help: %v vs %v (without)",
			jobOn.ResponseTime(), jobOff.ResponseTime())
	}
	// Output identical either way (each task counted exactly once).
	if jobOn.Counters.CompletedMaps != 40 || jobOn.Counters.MapInputRecords != 200_000 {
		t.Fatalf("counters double-counted: %+v", jobOn.Counters)
	}
	// Losing attempts were killed, and slots fully released at the end.
	if jobOn.Counters.KilledAttempts == 0 {
		t.Fatal("no attempt was ever killed")
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	eng, _, job := stragglerRig(t, false)
	RunUntilDone(eng, job, 1e7)
	if job.Counters.SpeculativeLaunches != 0 {
		t.Fatal("speculation ran while disabled")
	}
}

func TestSpeculationSlotAccounting(t *testing.T) {
	eng, jt, job := stragglerRig(t, true)
	for !job.Done() && eng.Step() {
		cs := jt.ClusterStatus()
		if cs.OccupiedMapSlots < 0 || cs.OccupiedMapSlots > cs.TotalMapSlots {
			t.Fatalf("slot accounting corrupt: %+v", cs)
		}
	}
	if cs := jt.ClusterStatus(); cs.OccupiedMapSlots != 0 {
		t.Fatalf("slots leaked after completion: %+v", cs)
	}
}

func TestSpeculationWithDynamicJob(t *testing.T) {
	// Speculation applies to dynamic jobs between increments too: no
	// pending maps while input is open is exactly the straggler window.
	cfg := cluster.PaperConfig()
	cfg.NodeSpeedFactors = make([]float64, cfg.Nodes)
	for i := range cfg.NodeSpeedFactors {
		cfg.NodeSpeedFactors[i] = 1
	}
	cfg.NodeSpeedFactors[1] = 0.05
	eng := sim.NewEngine()
	cl := cluster.New(eng, cfg)
	fs := dfs.New(cl)
	schema := data.NewSchema("V")
	var srcs []data.Source
	for b := 0; b < 20; b++ {
		recs := make([]data.Record, 5000)
		for i := range recs {
			recs[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, recs))
	}
	f, _ := fs.Create("in", srcs, 1)
	rc := DefaultConfig()
	rc.SpeculativeExecution = true
	jt := NewJobTracker(cl, rc, nil)
	conf := NewJobConf()
	conf.SetBool(ConfDynamicJob, true)
	job := jt.Submit(JobSpec{
		Conf: conf,
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(data.Record, *Collector) error { return nil })
		},
	}, SplitsForFile(f))
	// Let the initial splits run long enough for speculation to kick
	// in, then close the input.
	eng.RunUntil(120)
	if err := jt.EndOfInput(job); err != nil {
		t.Fatal(err)
	}
	if !RunUntilDone(eng, job, 1e7) {
		t.Fatal("dynamic job stuck")
	}
	if job.Counters.CompletedMaps != 20 {
		t.Fatalf("completed = %d", job.Counters.CompletedMaps)
	}
}
