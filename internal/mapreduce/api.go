package mapreduce

import (
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
)

// KeyValue is an intermediate or output pair. Keys are strings (the
// paper's sampling job uses a single dummy key); values are records.
type KeyValue struct {
	Key   string
	Value data.Record
}

// Collector accumulates the pairs emitted by a map or reduce function,
// plus any user-defined counters the function increments (Hadoop's
// custom counters; the Input Provider consumes the built-in ones, and
// user code may report additional statistics the same way).
type Collector struct {
	pairs    []KeyValue
	bytes    int64
	counters map[string]int64
}

// Inc adds delta to the named user counter.
func (c *Collector) Inc(name string, delta int64) {
	if c.counters == nil {
		c.counters = make(map[string]int64)
	}
	c.counters[name] += delta
}

// UserCounters returns the counters incremented so far (nil if none).
func (c *Collector) UserCounters() map[string]int64 { return c.counters }

// Emit outputs one pair.
func (c *Collector) Emit(key string, value data.Record) {
	c.pairs = append(c.pairs, KeyValue{Key: key, Value: value})
	c.bytes += int64(len(key) + value.EncodedSize())
}

// Pairs returns everything emitted so far.
func (c *Collector) Pairs() []KeyValue { return c.pairs }

// Len returns the number of emitted pairs.
func (c *Collector) Len() int { return len(c.pairs) }

// Bytes returns the encoded size of the emitted pairs.
func (c *Collector) Bytes() int64 { return c.bytes }

// TaskContext gives user code access to its configuration and split.
type TaskContext struct {
	// Conf is the job configuration.
	Conf *JobConf
	// SplitIndex is the ordinal of the split among the job's scheduled
	// splits (map tasks only; -1 for reduce).
	SplitIndex int
	// Source is the split's record source (map tasks only).
	Source data.Source
}

// Mapper is the user-defined map function, invoked once per input
// record: map(k1, v1) -> list(k2, v2).
type Mapper interface {
	// Map processes one record, emitting zero or more pairs.
	Map(rec data.Record, out *Collector) error
}

// SetupMapper is an optional extension: Setup runs before the first
// record, Cleanup after the last.
type SetupMapper interface {
	Mapper
	Setup(ctx *TaskContext) error
	Cleanup(out *Collector) error
}

// SplitMapper is an optional extension that takes control of scanning
// the whole split instead of being fed record-at-a-time. A mapper that
// can exploit structure in the split's Source (e.g. the dataset
// package's accelerated match path) implements this; the runtime
// charges the split's I/O and CPU either way — the whole split under
// the full input path, only the match-admitting sub-blocks under skip
// or index (see inputpath.go).
type SplitMapper interface {
	Mapper
	MapSplit(ctx *TaskContext, out *Collector) error
}

// Reducer is the user-defined reduce function:
// reduce(k2, list(v2)) -> list(k3, v3).
type Reducer interface {
	// Reduce processes one key and all its values.
	Reduce(key string, values []data.Record, out *Collector) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(rec data.Record, out *Collector) error

// Map implements Mapper.
func (f MapperFunc) Map(rec data.Record, out *Collector) error { return f(rec, out) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []data.Record, out *Collector) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []data.Record, out *Collector) error {
	return f(key, values, out)
}

// IdentityReducer passes every (key, value) through unchanged.
var IdentityReducer = ReducerFunc(func(key string, values []data.Record, out *Collector) error {
	for _, v := range values {
		out.Emit(key, v)
	}
	return nil
})

// Split is one unit of map input: a DFS block.
type Split struct {
	Block *dfs.Block
}

// SizeBytes returns the split length.
func (s Split) SizeBytes() int64 { return s.Block.SizeBytes() }

// NumRecords returns the split's record count.
func (s Split) NumRecords() int64 { return s.Block.NumRecords() }

// SplitsForFile wraps every block of a DFS file as a Split.
func SplitsForFile(f *dfs.File) []Split {
	out := make([]Split, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = Split{Block: b}
	}
	return out
}

// JobSpec describes a job: configuration plus factories for the user
// logic. Factories are called once per task attempt, so a mapper may
// keep per-task state (as Hadoop's do).
type JobSpec struct {
	// Conf is the job configuration; nil means an empty conf.
	Conf *JobConf
	// NewMapper builds the map logic for one task attempt.
	NewMapper func(conf *JobConf) Mapper
	// NewCombiner, when set, builds a combiner applied to each map
	// task's output before the shuffle (Hadoop's combiner): pairs are
	// grouped by key and fed through it, shrinking shuffle volume for
	// aggregation jobs.
	NewCombiner func(conf *JobConf) Reducer
	// NewReducer builds the reduce logic for one task attempt; nil
	// means IdentityReducer.
	NewReducer func(conf *JobConf) Reducer
	// OnComplete, if set, fires when the job finishes (in virtual time).
	OnComplete func(j *Job)
	// MemoKey, when non-empty, declares the map computation pure: the
	// output of mapping a split is a function of the split's source and
	// this key alone — never of the task index, attempt number,
	// scheduling order, or mutable state. A runtime configured with a
	// MapOutputCache may then reuse one task's output for any other
	// task (in any job, on any tracker sharing the cache) whose
	// (source, MemoKey) pair matches. Cached Collectors are shared, so
	// jobs that set a MemoKey must not mutate map output downstream.
	MemoKey string
	// FilterFingerprint, when non-empty, declares the map output a
	// function of only the input records matching the fingerprinted
	// predicate (a data.StatSource fingerprint): records the predicate
	// rejects never influence the output. A runtime running a skip or
	// index input path may then read only the statistics sub-blocks
	// that can hold matches, charging I/O for just those — see
	// inputpath.go. Full mode ignores the declaration entirely.
	FilterFingerprint string
}
