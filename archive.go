package dynamicmr

import (
	"fmt"
	"io"
	"time"

	"dynamicmr/internal/qstats"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/tsdb"
)

// BuildArchive snapshots the run into a cross-run archive (schema
// dynamicmr.archive/1): every trace span, the policy decision audit
// log, the utilization timeline, counters/gauges, the invariant-checked
// per-job diagnosis, the per-query registry dump when WithQueryStats
// was on, and the run configuration. Fields of cfg the cluster knows
// better than the caller — engine mode, scan workers, git revision —
// are filled in when left zero. It requires WithTracing (or an option
// that forces it).
//
// Two archives from twin runs feed Compare / `dynmr diff` to attribute
// a regression or a win component by component.
func (c *Cluster) BuildArchive(label string, cfg runarchive.RunConfig) (*runarchive.Archive, error) {
	tr := c.jt.Tracer()
	if !tr.Enabled() {
		return nil, fmt.Errorf("dynamicmr: BuildArchive requires WithTracing")
	}
	if cfg.EngineMode == "" {
		cfg.EngineMode = c.EngineMode()
	}
	if cfg.InputPath == "" {
		// Full-scan stays the empty default so full-mode archive bytes
		// match pre-field archives exactly.
		if m := c.InputPath(); m != InputPathFull {
			cfg.InputPath = m
		}
	}
	if cfg.ScanWorkers == 0 {
		cfg.ScanWorkers = c.scanPool.Workers()
	}
	if cfg.GitRev == "" {
		cfg.GitRev = runarchive.GitRev()
	}
	var queries *qstats.Dump
	if c.qstats.Enabled() {
		d := c.qstats.Dump()
		queries = &d
	}
	var series *tsdb.Dump
	var alerts *tsdb.AlertsDump
	if c.tsdb.Enabled() {
		// A query finishing after the last scheduled tick (the clock
		// stops with it) would otherwise be missing from the series and
		// the slo_burn windows.
		c.tsdb.Flush()
		sd := c.tsdb.Dump()
		ad := c.tsdb.AlertsDump()
		series, alerts = &sd, &ad
	}
	return runarchive.New(runarchive.Source{
		Label:         label,
		Tracer:        tr,
		Queries:       queries,
		Series:        series,
		Alerts:        alerts,
		VirtualTimeS:  c.eng.Now(),
		CreatedUnixMS: time.Now().UnixMilli(),
		Config:        cfg,
	})
}

// WriteArchive builds the run archive and writes it to w as gzip
// NDJSON; see BuildArchive.
func (c *Cluster) WriteArchive(w io.Writer, label string, cfg runarchive.RunConfig) error {
	a, err := c.BuildArchive(label, cfg)
	if err != nil {
		return err
	}
	return a.Write(w)
}
