// Package dynamicmr is a faithful, runnable reproduction of
// "Extending Map-Reduce for Efficient Predicate-Based Sampling"
// (Grover & Carey, ICDE 2012): a miniature Hadoop-like MapReduce
// runtime on a discrete-event-simulated cluster, extended with the
// paper's incremental job expansion mechanism — dynamic jobs whose
// pluggable Input Providers decide, from runtime statistics and cluster
// load, when to consume more input — governed by configurable growth
// policies, and applied to predicate-based sampling
// (SELECT ... WHERE p LIMIT k over un-indexed files) so that response
// time tracks the sample size rather than the dataset size.
//
// The root package is a facade over the internal packages:
//
//	c, _ := dynamicmr.NewCluster()
//	c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{Scale: 5, Skew: 1})
//	res, _ := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 10000")
//	fmt.Println(len(res.Rows), "records in", res.Job.ResponseTime(), "virtual seconds")
//
// Everything — cluster hardware, HDFS-style block placement, heartbeat
// scheduling (FIFO and Fair), task execution costs, the evaluation
// loop, the policies of Table I — runs deterministically on a virtual
// clock, while the map/reduce functions and the produced sample are
// computed for real.
package dynamicmr
