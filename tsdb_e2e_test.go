package dynamicmr

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynamicmr/internal/obs"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
)

// TestTSDBNeutralWhenDisabled: the time-series engine must not perturb
// the simulation — a run with WithTimeSeries follows a bit-identical
// virtual timeline and produces identical results to a run without it.
// The collection tick adds engine events, but never changes a job's.
func TestTSDBNeutralWhenDisabled(t *testing.T) {
	run := func(enabled bool) (float64, string) {
		opts := []Option{WithTracing(trace.Config{})}
		if enabled {
			opts = append(opts, WithTimeSeries(0))
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		var rows bytes.Buffer
		for q := 0; q < 3; q++ {
			res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Rows {
				rows.WriteString(r.String())
				rows.WriteByte('\n')
			}
		}
		return c.Now(), rows.String()
	}
	offV, offRows := run(false)
	onV, onRows := run(true)
	if offV != onV {
		t.Fatalf("tsdb changed the virtual timeline: off=%v on=%v", offV, onV)
	}
	if offRows != onRows {
		t.Fatal("tsdb changed query output")
	}
}

// TestTSDBOverhead pins the engine's cost: the serve-style loop with
// the time-series engine (and an evaluated rule set) must stay within
// 5% of the traced+qstats baseline, with the same min-of-N discipline
// and absolute allowance as the other overhead guards.
func TestTSDBOverhead(t *testing.T) {
	const runs = 5
	rules := []tsdb.Rule{
		{Name: "jobs-high", Kind: tsdb.KindThreshold, Series: "cluster.running_jobs", Value: 1e9},
		{Name: "latency-slo", Kind: tsdb.KindSLOBurn, ObjectiveS: 1e9},
	}
	run := func(on bool) (time.Duration, float64) {
		opts := []Option{WithTracing(trace.Config{}), WithQueryStats()}
		if on {
			opts = append(opts, WithAlertRules(rules...))
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for q := 0; q < 3; q++ {
			res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 200 {
				t.Fatalf("rows = %d", len(res.Rows))
			}
		}
		if on {
			if d := c.TSDB().Dump(); len(d.Series) == 0 {
				t.Fatal("tsdb collected nothing")
			}
		}
		return time.Since(start), c.Now()
	}
	minWall := func(on bool) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := run(on)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	run(false) // warm-up
	base, baseV := minWall(false)
	on, onV := minWall(true)

	if baseV != onV {
		t.Fatalf("tsdb changed the virtual timeline: base=%vs on=%vs", baseV, onV)
	}
	budget := base + base/20 + 25*time.Millisecond
	if on > budget {
		t.Fatalf("instrumented loop took %v, baseline %v: tsdb overhead exceeds 5%%", on, base)
	}
	t.Logf("traced+qstats 3-query loop min-of-%d: %v; with tsdb+rules: %v", runs, base, on)
}

// alertRun executes the canned five-query session with a latency SLO
// at the given objective and returns the cluster plus its archive
// after a bytes round-trip.
func alertRun(t *testing.T, objectiveS float64) (*Cluster, *runarchive.Archive) {
	t.Helper()
	c, err := NewCluster(
		WithUtilizationSampling(5),
		WithAlertRules(tsdb.Rule{
			Name: "latency-slo", Kind: tsdb.KindSLOBurn,
			ObjectiveS: objectiveS, Severity: "page",
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := c.BuildArchive("alert twin", runarchive.RunConfig{Policy: "LA", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := runarchive.Load(&buf)
	if err != nil {
		t.Fatalf("alert archive does not round-trip: %v", err)
	}
	return c, loaded
}

// TestAlertSLOBurnE2E is the tentpole acceptance run: a latency-SLO
// rule every query breaches must fire during the run and then appear
// on every surface — AlertsDump, /alerts and /live, the HTML report,
// the run archive — and `dynmr diff` against a non-firing twin must
// attribute the alert-set difference.
func TestAlertSLOBurnE2E(t *testing.T) {
	c, archA := alertRun(t, 0.001) // every query breaches a 1ms objective
	_, archB := alertRun(t, 1e9)   // twin: nothing ever breaches

	// The rule fired on the virtual clock and is still firing.
	ad := c.TSDB().AlertsDump()
	if ad.Schema != tsdb.AlertsSchemaVersion {
		t.Fatalf("alerts schema %q", ad.Schema)
	}
	var fired *tsdb.AlertEvent
	for i, e := range ad.Events {
		if e.Rule == "latency-slo" && e.State == tsdb.StateFiring {
			fired = &ad.Events[i]
			break
		}
	}
	if fired == nil {
		t.Fatalf("latency-slo never fired; events: %+v", ad.Events)
	}
	if fired.TimeS <= 0 || fired.Value <= 0 || fired.Severity != "page" {
		t.Fatalf("firing event: %+v", fired)
	}
	if len(ad.Active) != 1 || ad.Active[0].Rule != "latency-slo" {
		t.Fatalf("active set: %+v", ad.Active)
	}
	// The burn percentage is also a derived series.
	if _, ok := c.TSDB().Latest("slo.latency-slo.burn_pct"); !ok {
		t.Fatal("no slo.latency-slo.burn_pct series")
	}

	// /alerts and /live surface the firing rule from the published
	// snapshot.
	srv := obs.NewServer(c.Sampler())
	srv.SetQueryStats(c.QueryStats())
	srv.SetTSDB(c.TSDB())
	srv.Publish()
	get := func(path string) string {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s status %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	var served tsdb.AlertsDump
	if err := json.Unmarshal([]byte(get("/alerts")), &served); err != nil {
		t.Fatalf("bad /alerts JSON: %v", err)
	}
	if len(served.Active) != 1 || served.Active[0].Rule != "latency-slo" {
		t.Fatalf("/alerts active set: %+v", served.Active)
	}
	live := get("/live")
	for _, want := range []string{"alert", "latency-slo", "page"} {
		if !strings.Contains(live, want) {
			t.Errorf("/live missing %q", want)
		}
	}

	// The HTML report carries the alert section and timeline markers.
	var rep bytes.Buffer
	if err := c.WriteReport(&rep, "alert e2e", nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"latency-slo", "mark-alert", "slo_burn"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}

	// The archive round-trip kept the series and the alert log.
	if archA.Series == nil || len(archA.Series.Series) == 0 {
		t.Fatal("archive lost the time-series dump")
	}
	if archA.Alerts == nil || len(archA.Alerts.Events) == 0 {
		t.Fatal("archive lost the alert log")
	}
	if archA.Manifest.Counts.AlertEvents != len(archA.Alerts.Events) {
		t.Fatalf("manifest counts %d alert events, archive has %d",
			archA.Manifest.Counts.AlertEvents, len(archA.Alerts.Events))
	}

	// Diffing against the non-firing twin attributes the alert-set
	// difference.
	diff, err := runarchive.Compare(archA, archB)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.AlertsOnlyA) == 0 {
		t.Fatalf("diff missed the alert-set difference: %+v", diff.AlertsOnlyA)
	}
	found := false
	for _, sig := range diff.AlertsOnlyA {
		if sig == "latency-slo(firing)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alerts only in A: %v, want latency-slo(firing)", diff.AlertsOnlyA)
	}
	if len(diff.AlertsOnlyB) != 0 {
		t.Fatalf("alerts only in B: %v, want none", diff.AlertsOnlyB)
	}
}
