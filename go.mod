module dynamicmr

go 1.22
