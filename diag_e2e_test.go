package dynamicmr

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"testing"
	"time"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/vlog"
)

// TestClusterDiagnose: the facade produces an invariant-clean report
// for the quickstart query, with a non-trivial critical path.
func TestClusterDiagnose(t *testing.T) {
	c, err := NewCluster(WithTracing(trace.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) == 0 {
		t.Fatal("no jobs diagnosed")
	}
	for _, j := range rep.Jobs {
		if len(j.CriticalPath) < 2 {
			t.Errorf("job %d: critical path has %d node(s)", j.JobID, len(j.CriticalPath))
		}
		if j.MakespanS <= 0 {
			t.Errorf("job %d: makespan %g", j.JobID, j.MakespanS)
		}
	}
	if rep.Counters[trace.CounterPolicyEvals] == 0 {
		t.Error("policy evaluation counter missing from report")
	}
}

// TestDiagnoseRequiresTracing: without WithTracing there is nothing to
// analyze, and the facade says so instead of returning an empty report.
func TestDiagnoseRequiresTracing(t *testing.T) {
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Diagnose(); err == nil {
		t.Fatal("Diagnose without WithTracing must error")
	}
}

// TestLoggingE2E: WithLogging produces NDJSON records stamped with the
// virtual clock covering the catalog, jobtracker, session, and policy
// layers — and never a wall-clock time field.
func TestLoggingE2E(t *testing.T) {
	var buf bytes.Buffer
	c, err := NewCluster(WithLogging(&buf, slog.LevelDebug))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("log line %d is not JSON: %v: %s", n, err, sc.Text())
		}
		n++
		if _, ok := m[slog.TimeKey]; ok {
			t.Fatalf("log record carries wall-clock %q: %v", slog.TimeKey, m)
		}
		vt, ok := m[vlog.KeyVT].(float64)
		if !ok || vt < 0 {
			t.Fatalf("log record missing virtual clock: %v", m)
		}
		if msg, ok := m[slog.MessageKey].(string); ok {
			seen[msg] = true
		}
	}
	if n == 0 {
		t.Fatal("no log records emitted")
	}
	for _, want := range []string{
		"table registered", "query started", "job submitted",
		"input provider decision", "job finished", "query finished",
	} {
		if !seen[want] {
			t.Errorf("expected a %q log record; got messages %v", want, seen)
		}
	}
}

// TestDiagnoseOverhead guards the diagnosis cost: running Analyze +
// CheckInvariants on top of a traced quickstart run must stay under 5%
// of the traced run's wall clock (same min-of-N discipline and
// absolute allowance as the tracing and sampler overhead checks).
func TestDiagnoseOverhead(t *testing.T) {
	const runs = 5
	run := func(diagnose bool) (time.Duration, float64) {
		c, err := NewCluster(WithTracing(trace.Config{}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 200 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		if diagnose {
			rep, err := c.Diagnose()
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start), c.Now()
	}
	minWall := func(diagnose bool) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := run(diagnose)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	run(false) // warm-up
	base, baseV := minWall(false)
	on, onV := minWall(true)

	if math.Abs(baseV-onV) > 0.01*baseV {
		t.Fatalf("diagnosis changed the virtual timeline: base=%vs on=%vs", baseV, onV)
	}
	budget := base + base/20 + 25*time.Millisecond
	if on > budget {
		t.Fatalf("diagnosed run took %v, traced run %v: diagnosis overhead exceeds 5%%", on, base)
	}
	t.Logf("traced quickstart min-of-%d: %v; with Diagnose+CheckInvariants: %v", runs, base, on)
}

// TestDiagnoseAgainstReport cross-checks the facade report with a
// manual diag.FromTracer build: both views must agree on job count.
func TestDiagnoseAgainstReport(t *testing.T) {
	c, err := NewCluster(WithTracing(trace.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != diag.SchemaVersion {
		t.Errorf("schema = %q, want %q", rep.Schema, diag.SchemaVersion)
	}
	if len(rep.Jobs) != 2 {
		t.Errorf("want 2 diagnosed jobs (one per query), got %d", len(rep.Jobs))
	}
}
