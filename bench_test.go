package dynamicmr

// One benchmark per table and figure of the paper's evaluation (§V).
// Each benchmark regenerates the artifact on the simulated cluster and
// reports the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction run. Benchmarks default to a
// scaled-down geometry (seconds each); set DYNAMICMR_BENCH_MODE=quick
// or =paper for the larger configurations (cmd/experiments prints the
// full grids).

import (
	"math"
	"os"
	"testing"
	"time"

	"dynamicmr/internal/core"
	"dynamicmr/internal/experiments"
	"dynamicmr/internal/trace"
)

// benchOptions picks the experiment geometry for benchmarks.
func benchOptions() experiments.Options {
	switch os.Getenv("DYNAMICMR_BENCH_MODE") {
	case "paper":
		return experiments.DefaultOptions()
	case "quick":
		return experiments.QuickOptions()
	}
	o := experiments.DefaultOptions()
	o.Scales = []int{2, 5, 10}
	o.Runs = 1
	o.SampleK = 500
	o.RowsPerScaleOverride = 400_000
	o.WorkloadRowsPerScaleOverride = 3_200_000
	o.Users = 4
	o.WarmupS = 100
	o.MeasureS = 300
	o.WorkloadScale = 15
	o.SamplingFractions = []float64{0.5}
	return o
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.TableI(); len(t.Rows) != 5 {
			b.Fatal("Table I incomplete")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.TableIII(); len(t.Rows) != 3 {
			b.Fatal("Table III incomplete")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	opt := benchOptions()
	var top int64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure4(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
	_ = top
}

func BenchmarkFigure5(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(opt)
		if err != nil {
			b.Fatal(err)
		}
		maxScale := opt.Scales[len(opt.Scales)-1]
		if had, ok := res.Cell(1, maxScale, core.PolicyHadoop); ok {
			b.ReportMetric(had.ResponseS, "hadoop_response_s")
			b.ReportMetric(had.PartitionsProcessed, "hadoop_partitions")
		}
		if la, ok := res.Cell(1, maxScale, core.PolicyLA); ok {
			b.ReportMetric(la.ResponseS, "la_response_s")
			b.ReportMetric(la.PartitionsProcessed, "la_partitions")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if la, ok := res.Cell(core.PolicyLA, 0); ok {
			b.ReportMetric(la.Throughput, "la_jobs_per_hour")
		}
		if had, ok := res.Cell(core.PolicyHadoop, 0); ok {
			b.ReportMetric(had.Throughput, "hadoop_jobs_per_hour")
			b.ReportMetric(had.CPUUtilPct, "hadoop_cpu_pct")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(opt)
		if err != nil {
			b.Fatal(err)
		}
		f := opt.SamplingFractions[0]
		if la, ok := res.Cell(f, core.PolicyLA); ok {
			b.ReportMetric(la.NonSamplingThroughput, "nonsampling_under_la")
		}
		if had, ok := res.Cell(f, core.PolicyHadoop); ok {
			b.ReportMetric(had.NonSamplingThroughput, "nonsampling_under_hadoop")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(opt)
		if err != nil {
			b.Fatal(err)
		}
		f := opt.SamplingFractions[0]
		if la, ok := res.Cell(f, core.PolicyLA); ok {
			b.ReportMetric(la.LocalityPct, "fair_locality_pct")
			b.ReportMetric(la.OccupancyPct, "fair_occupancy_pct")
		}
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInterval(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationThreshold(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGrabScale(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGrabScale(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationAdaptive(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// BenchmarkEstimateSelectivity measures the §VI statistics-harness
// application: estimate a predicate's selectivity to ±10%.
func BenchmarkEstimateSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 0, Selectivity: 0.02, Rows: 800_000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
		est, err := c.EstimateSelectivity("lineitem", "L_DISCOUNT = 0.11", 0.1, "LA")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(est.Selectivity, "estimate")
		b.ReportMetric(float64(est.PartitionsProcessed), "partitions")
	}
}

// BenchmarkSampleQuery measures the end-to-end facade path: one dynamic
// sampling query on a pre-loaded table (fresh cluster per iteration to
// keep runs independent).
func BenchmarkSampleQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
		res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 200 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// runQuickstart executes the README quickstart query on a fresh
// cluster and returns the wall-clock cost and virtual finish time.
func runQuickstart(t *testing.T, opts ...Option) (wall time.Duration, virtual float64) {
	t.Helper()
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	return time.Since(start), c.Now()
}

// TestTracingDisabledOverhead guards the nil-tracer fast path: with
// tracing off, the instrumentation hooks must cost under 5% of the
// traced run's wall clock on the quickstart job (min-of-N to damp
// scheduler noise, plus a small absolute allowance so sub-millisecond
// jitter cannot fail the build), and the simulated timeline must be
// unchanged.
func TestTracingDisabledOverhead(t *testing.T) {
	const runs = 5
	minWall := func(opts ...Option) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := runQuickstart(t, opts...)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	// Interleaving warm-up: first measured pass shouldn't pay for page
	// cache and JIT-less warmup alone.
	runQuickstart(t)
	off, offV := minWall()
	on, onV := minWall(WithTracing(trace.Config{}))

	if math.Abs(offV-onV) > 0.01*onV {
		t.Fatalf("tracing changed the virtual timeline: off=%vs on=%vs", offV, onV)
	}
	budget := on + on/20 + 25*time.Millisecond
	if off > budget {
		t.Fatalf("tracing-disabled run took %v, traced run %v: disabled overhead exceeds 5%%", off, on)
	}
}

// TestSamplerOverhead guards the utilization sampler's cost: on top of
// a traced run, enabling WithUtilizationSampling must stay under 5% of
// wall clock (same min-of-N discipline and absolute allowance as the
// tracing check) and must not move the virtual timeline.
func TestSamplerOverhead(t *testing.T) {
	const runs = 5
	minWall := func(opts ...Option) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := runQuickstart(t, opts...)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	runQuickstart(t, WithTracing(trace.Config{}))
	base, baseV := minWall(WithTracing(trace.Config{}))
	on, onV := minWall(WithTracing(trace.Config{}), WithUtilizationSampling(5))

	if math.Abs(baseV-onV) > 0.01*baseV {
		t.Fatalf("sampling changed the virtual timeline: base=%vs on=%vs", baseV, onV)
	}
	budget := base + base/20 + 25*time.Millisecond
	if on > budget {
		t.Fatalf("sampled run took %v, unsampled traced run %v: sampler overhead exceeds 5%%", on, base)
	}
}
