package dynamicmr

import (
	"fmt"
	"io"
	"log/slog"
	"strings"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/diag"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/obs"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/sampling"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/tpch"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
	"dynamicmr/internal/vlog"
)

// DatasetSpec describes a LINEITEM dataset to generate and load.
type DatasetSpec struct {
	// Scale is the TPC-H scale factor (the paper evaluates 5-100).
	Scale int
	// Skew is the Zipf exponent for the distribution of
	// predicate-matching records across partitions: 0, 1 or 2.
	Skew float64
	// Selectivity of the planted predicate; 0 means the paper's 0.05%.
	Selectivity float64
	// Seed makes the dataset deterministic.
	Seed int64
	// Rows overrides the TPC-H cardinality (testing/demo scale); 0
	// keeps Scale x 6M rows.
	Rows int64
	// Partitions overrides the block count; 0 keeps 8 x Scale.
	Partitions int
}

// Engine modes selectable with WithEngineMode.
const (
	// EngineModeBaseline is the stock runtime: map outputs are built,
	// partitioned and sorted from scratch for every job.
	EngineModeBaseline = "baseline"
	// EngineModeMemory keeps session state resident across the jobs of
	// a query (the M3R idea): partitioned, pre-sorted map outputs are
	// reused by later jobs over the same splits (delta-shuffle), and the
	// dataset blocks behind grabbed splits stay pinned hot. Query
	// results and virtual timings are byte-identical to baseline; only
	// real wall-clock time and allocations improve.
	EngineModeMemory = "memory"
)

// Input paths selectable with WithInputPath.
const (
	// InputPathFull is the stock read path: every map task reads its
	// whole split, block statistics notwithstanding. Query results and
	// virtual timings are byte-identical to clusters predating the
	// zone-map layer.
	InputPathFull = mapreduce.InputPathFull
	// InputPathSkip consults the load-time zone maps (per-block min/max
	// and match presence for the planted predicate family) and charges
	// simulated disk I/O and CPU only for the sub-blocks that can
	// contain matches; provably match-free blocks are skipped unread.
	// Scan results are record-identical to full; simulated costs — and
	// therefore provider decisions — change, which is the point.
	InputPathSkip = mapreduce.InputPathSkip
	// InputPathIndex reads matches through the per-partition clustered
	// index (one probe per promising block plus the matching rows) and
	// additionally has Input Providers grab statistically promising
	// splits first (informed grab ordering).
	InputPathIndex = mapreduce.InputPathIndex
)

// defaultResidentCap bounds the memory engine mode's resident bytes
// (encoded map-output size) unless WithRuntime supplied a store.
const defaultResidentCap = 512 << 20

// Option configures NewCluster.
type Option func(*config)

type config struct {
	hw             cluster.Config
	runtime        mapreduce.Config
	scheduler      mapreduce.TaskScheduler
	policies       *core.Registry
	engineMode     string
	sample         bool
	sampleInterval float64
	qstats         bool
	tsdb           bool
	tsdbInterval   float64
	alertRules     []tsdb.Rule
	logW           io.Writer
	logLevel       slog.Leveler
}

// WithHardware replaces the default 10-node paper cluster.
func WithHardware(hw cluster.Config) Option {
	return func(c *config) { c.hw = hw }
}

// WithMultiUserSlots switches to the 16-map-slots-per-node
// configuration of the paper's multi-user experiments.
func WithMultiUserSlots() Option {
	return func(c *config) { c.hw = c.hw.MultiUser() }
}

// WithFairScheduler replaces the default FIFO scheduler with the Fair
// Scheduler using the given locality wait in (virtual) seconds.
func WithFairScheduler(localityWaitS float64) Option {
	return func(c *config) { c.scheduler = mapreduce.NewFairScheduler(localityWaitS) }
}

// WithRuntime replaces the MapReduce runtime configuration (heartbeat
// interval, task costs, failure injection).
func WithRuntime(rc mapreduce.Config) Option {
	return func(c *config) { c.runtime = rc }
}

// WithSpeculativeExecution enables backup attempts for straggling map
// tasks (Hadoop's speculative execution).
func WithSpeculativeExecution() Option {
	return func(c *config) { c.runtime.SpeculativeExecution = true }
}

// WithPolicies replaces the Table I policy registry (e.g. one parsed
// from a custom policy.xml via ParsePolicyXML).
func WithPolicies(r *core.Registry) Option {
	return func(c *config) { c.policies = r }
}

// WithScanWorkers attaches an n-worker scan-executor pool that runs
// pure map record scans (jobs declaring a MemoKey, i.e. every sampling
// job) off the simulator goroutine, overlapping real compute with
// simulated I/O time. Simulated task costs are unchanged and results
// are joined at completion-event time, so all query results and
// virtual timings are identical to the inline default; only wall-clock
// time improves on multi-core hosts. n <= 0 keeps scans inline. Call
// Close when done to stop the workers.
func WithScanWorkers(n int) Option {
	return func(c *config) { c.runtime.ScanExecutor = executor.NewPool(n) }
}

// WithEngineMode selects the execution engine mode: EngineModeBaseline
// (the default) or EngineModeMemory, which keeps per-session map
// outputs resident and partition-stable across the jobs of a query so
// GROW rounds only shuffle newly grabbed splits. NewCluster rejects
// unknown modes. Memory mode changes real wall-clock time and
// allocations only — the virtual timeline and every query result stay
// byte-identical to baseline.
func WithEngineMode(mode string) Option {
	return func(c *config) { c.engineMode = mode }
}

// WithInputPath selects the map-task read path: InputPathFull (the
// default), InputPathSkip or InputPathIndex. NewCluster rejects
// unknown modes. Sessions inherit the cluster's mode as their default
// and individual queries can override it with
// SET dynamic.input.path = full|skip|index.
func WithInputPath(mode string) Option {
	return func(c *config) { c.runtime.InputPath = mode }
}

// WithTracing enables the tracing/metrics subsystem with the given
// configuration (Enabled is forced on). The collected spans, policy
// audit log and utilization timeline are available via Tracer().
func WithTracing(tc trace.Config) Option {
	return func(c *config) {
		tc.Enabled = true
		c.runtime.Trace = tc
	}
}

// WithLogging routes the runtime's structured log stream — job
// lifecycle, Input Provider decisions, query execution — to w as
// NDJSON, one record per line, each stamped with the virtual clock
// ("vt" attribute; see internal/vlog for the attribute contract).
// level gates records (nil means slog.LevelInfo). Without this
// option nothing is ever written: library code defaults to a discard
// logger.
func WithLogging(w io.Writer, level slog.Leveler) Option {
	return func(c *config) {
		c.logW = w
		c.logLevel = level
	}
}

// WithUtilizationSampling attaches a virtual-clock utilization sampler
// to the cluster: every intervalS virtual seconds (0 picks the default
// 30 s cadence) it snapshots per-node CPU, disk and slot occupancy,
// queue depths and Input Provider state. The series backs Sampler(),
// WriteReport and the obs.Server /metrics endpoint; combine with
// WithTracing for the slot-occupancy Gantt and gauge registry.
func WithUtilizationSampling(intervalS float64) Option {
	return func(c *config) {
		c.sample = true
		c.sampleInterval = intervalS
	}
}

// WithQueryStats attaches the per-query observability registry
// (internal/qstats): every query run through a session gets a stable
// ID ("q-000001"...) that rides the JobConf and the structured-log
// stream, a lifecycle record (submit / first-match / limit-hit /
// finish), resource attribution, an incremental diag breakdown at
// finish, and a slot in the rolling per-policy latency histograms.
// Tracing is forced on (the registry consumes spans incrementally).
// Read the registry via QueryStats(); dynmr serve exposes it on
// /queries and /live.
func WithQueryStats() Option {
	return func(c *config) {
		c.qstats = true
		c.runtime.Trace.Enabled = true
	}
}

// WithTimeSeries attaches the in-process time-series engine
// (internal/tsdb): every intervalS virtual seconds (0 picks the default
// 5 s cadence) it folds the trace registry's counters and gauges, the
// cluster's queue/slot state, the per-policy qstats aggregates and the
// derived per-query series (match-arrival rate, per-split scan cost,
// overshoot ratio) into fixed-capacity downsampling ring buffers.
// Tracing is forced on (the counters and gauges are the main feed).
// Read the engine via TSDB(); dynmr serve exposes it on /tsdb and as
// sparkline trend panels in /live.
func WithTimeSeries(intervalS float64) Option {
	return func(c *config) {
		c.tsdb = true
		c.tsdbInterval = intervalS
		c.runtime.Trace.Enabled = true
	}
}

// WithAlertRules attaches the declarative alert/SLO layer on top of the
// time-series engine (implied, with its default cadence, if
// WithTimeSeries was not given): rules are evaluated at every
// collection tick on the virtual clock and produce a firing/resolved
// event log (schema tsdb.AlertsSchemaVersion). Query stats are forced
// on so latency-objective (slo_burn) rules have their input. Read the
// log via TSDB().AlertsDump(); dynmr serve exposes it on /alerts and as
// the active-alerts banner in /live.
func WithAlertRules(rules ...tsdb.Rule) Option {
	return func(c *config) {
		c.tsdb = true
		c.alertRules = append(c.alertRules, rules...)
		c.qstats = true
		c.runtime.Trace.Enabled = true
	}
}

// Cluster is the top-level handle: a simulated Hadoop cluster with a
// DFS, a JobTracker, a table catalog and a policy registry.
type Cluster struct {
	eng      *sim.Engine
	hw       *cluster.Cluster
	fs       *dfs.DFS
	jt       *mapreduce.JobTracker
	catalog  *hive.Catalog
	policies *core.Registry
	sessions map[string]*hive.Session
	sampler  *obs.Sampler
	qstats   *qstats.Registry
	tsdb     *tsdb.DB
	scanPool *executor.Pool
	resident *mapreduce.ResidentStore
	closed   bool
	seed     int64
}

// NewCluster builds a simulated cluster; defaults reproduce the
// paper's §V-A testbed (10 nodes x 4 cores x 4 disks, 4 map
// slots/node, FIFO scheduling, Table I policies).
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg := config{
		hw:      cluster.PaperConfig(),
		runtime: mapreduce.DefaultConfig(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.hw.Validate(); err != nil {
		return nil, err
	}
	if cfg.policies == nil {
		cfg.policies = core.DefaultRegistry()
	}
	if !mapreduce.ValidInputPath(cfg.runtime.InputPath) {
		return nil, fmt.Errorf("dynamicmr: unknown input path %q (want %q, %q or %q)",
			cfg.runtime.InputPath, InputPathFull, InputPathSkip, InputPathIndex)
	}
	var resident *mapreduce.ResidentStore
	switch cfg.engineMode {
	case "", EngineModeBaseline:
		// stock runtime
	case EngineModeMemory:
		resident = cfg.runtime.ResidentStore
		if resident == nil {
			resident = mapreduce.NewResidentStore(cfg.runtime.MapOutputCache, defaultResidentCap)
			cfg.runtime.ResidentStore = resident
		}
		// The cluster itself holds a claim so resident state survives
		// individual session churn; Close releases it.
		resident.Retain()
	default:
		return nil, fmt.Errorf("dynamicmr: unknown engine mode %q (want %q or %q)",
			cfg.engineMode, EngineModeBaseline, EngineModeMemory)
	}
	eng := sim.NewEngine()
	hw := cluster.New(eng, cfg.hw)
	if cfg.logW != nil {
		level := cfg.logLevel
		if level == nil {
			level = slog.LevelInfo
		}
		// The logger binds to this cluster's engine, so it can only be
		// built here, after the clock exists.
		cfg.runtime.Logger = vlog.New(vlog.LockWriter(cfg.logW), level, eng.Now)
	}
	jt := mapreduce.NewJobTracker(hw, cfg.runtime, cfg.scheduler)
	catalog := hive.NewCatalog()
	catalog.SetLogger(jt.Logger())
	c := &Cluster{
		eng:      eng,
		hw:       hw,
		fs:       dfs.New(hw),
		jt:       jt,
		catalog:  catalog,
		policies: cfg.policies,
		sessions: make(map[string]*hive.Session),
		scanPool: cfg.runtime.ScanExecutor,
		resident: resident,
	}
	if cfg.sample {
		c.sampler = obs.NewSampler(c.jt, obs.Config{IntervalS: cfg.sampleInterval})
		c.sampler.Start()
	}
	if cfg.qstats {
		c.qstats = qstats.NewRegistry(jt)
	}
	if cfg.tsdb {
		db, err := tsdb.New(jt, tsdb.Config{IntervalS: cfg.tsdbInterval, Rules: cfg.alertRules})
		if err != nil {
			return nil, err
		}
		db.SetQueryStats(c.qstats)
		db.Start()
		c.tsdb = db
	}
	return c, nil
}

// Now returns the cluster's virtual time in seconds.
func (c *Cluster) Now() float64 { return c.eng.Now() }

// Close releases the cluster's background resources: every open
// session's per-session state, the memory engine mode's resident store
// (parts purged, blocks unpinned) and the scan-executor pool's workers
// when built WithScanWorkers. Idempotent and safe to call on any
// cluster; queries submitted after Close fall back to inline scans
// with no resident reuse.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.sessions {
		s.Close()
	}
	if c.resident != nil {
		c.resident.Release()
	}
	c.scanPool.Close()
}

// EngineMode reports the mode the cluster was built with.
func (c *Cluster) EngineMode() string {
	if c.resident != nil {
		return EngineModeMemory
	}
	return EngineModeBaseline
}

// InputPath reports the map-task read path the cluster was built with
// (InputPathFull unless WithInputPath chose otherwise).
func (c *Cluster) InputPath() string { return c.jt.InputPath() }

// ResidentStats snapshots the memory engine mode's resident store; ok
// is false (and the stats zero) in baseline mode.
func (c *Cluster) ResidentStats() (mapreduce.ResidentStats, bool) {
	if c.resident == nil {
		return mapreduce.ResidentStats{}, false
	}
	return c.resident.Stats(), true
}

// Policies returns the policy registry (the policy.xml contents).
func (c *Cluster) Policies() *core.Registry { return c.policies }

// Catalog returns the table catalog.
func (c *Cluster) Catalog() *hive.Catalog { return c.catalog }

// JobTracker exposes the underlying runtime for advanced use (direct
// job submission, custom Input Providers).
func (c *Cluster) JobTracker() *mapreduce.JobTracker { return c.jt }

// Engine exposes the discrete-event clock for advanced use.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Tracer returns the cluster's tracer; nil unless built WithTracing.
// Use it to export a Chrome trace (WriteChromeTrace), the policy audit
// log (WritePolicyCSV) or the utilization timeline (WriteTimelineCSV).
func (c *Cluster) Tracer() *trace.Tracer { return c.jt.Tracer() }

// Sampler returns the utilization sampler; nil unless built
// WithUtilizationSampling.
func (c *Cluster) Sampler() *obs.Sampler { return c.sampler }

// QueryStats returns the per-query registry; nil unless built
// WithQueryStats. All registry methods are nil-safe, so the result can
// be used unconditionally.
func (c *Cluster) QueryStats() *qstats.Registry { return c.qstats }

// TSDB returns the time-series engine; nil unless built WithTimeSeries
// or WithAlertRules. All engine methods are nil-safe, so the result can
// be used unconditionally.
func (c *Cluster) TSDB() *tsdb.DB { return c.tsdb }

// WriteReport renders the self-contained HTML run report (utilization
// time-series, slot-occupancy Gantt, policy decision log) to w. It
// requires WithUtilizationSampling; WithTracing enriches it with the
// Gantt and decision overlay.
func (c *Cluster) WriteReport(w io.Writer, title string, params [][2]string) error {
	if c.sampler == nil {
		return fmt.Errorf("dynamicmr: WriteReport requires WithUtilizationSampling")
	}
	rep := obs.NewReport(title, c.sampler, params)
	if c.qstats.Enabled() {
		dump := c.qstats.Dump()
		rep.Queries = dump.Queries
		rep.QueryPolicies = dump.Policies
	}
	if c.tsdb.Enabled() {
		alerts := c.tsdb.AlertsDump()
		rep.Alerts = &alerts
	}
	return rep.WriteHTML(w)
}

// Diagnose runs the post-run job diagnosis engine over everything the
// cluster's tracer recorded: per job, the critical path, the time
// breakdown (whose components sum to the makespan) and any detected
// anomalies (stragglers, speculative waste, scan stalls). It requires
// WithTracing. The report can be re-generated at any point; it covers
// the jobs finished so far.
func (c *Cluster) Diagnose() (*diag.Report, error) {
	rep := diag.FromTracer(c.jt.Tracer())
	if rep == nil {
		return nil, fmt.Errorf("dynamicmr: Diagnose requires WithTracing")
	}
	return rep, nil
}

// Tables lists the registered table names.
func (c *Cluster) Tables() []string { return c.catalog.Names() }

// LoadLineItem generates a LINEITEM dataset per spec, stores it in the
// DFS (blocks spread round-robin across all disks, unreplicated, as in
// §V-B) and registers it as a queryable table. It returns the built
// dataset for inspection (planted predicate, match distribution).
func (c *Cluster) LoadLineItem(name string, spec DatasetSpec) (*dataset.Dataset, error) {
	c.seed++
	ds, err := dataset.Build(dataset.Spec{
		Name:         name,
		Scale:        spec.Scale,
		Seed:         spec.Seed + c.seed*1_000_003,
		Z:            spec.Skew,
		Selectivity:  spec.Selectivity,
		Partitions:   spec.Partitions,
		RowsOverride: spec.Rows,
	})
	if err != nil {
		return nil, err
	}
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, err := c.fs.Create(name, srcs, 1)
	if err != nil {
		return nil, err
	}
	if err := c.catalog.Register(&hive.Table{Name: name, Schema: tpch.LineItemSchema, File: f}); err != nil {
		return nil, err
	}
	return ds, nil
}

// Session returns (creating on first use) the named user's Hive
// session. Sessions carry per-user SET overrides and map to Fair
// Scheduler pools.
func (c *Cluster) Session(user string) *hive.Session {
	s, ok := c.sessions[user]
	if !ok {
		s = hive.NewSession(c.jt, c.catalog, c.policies, user)
		s.SetQueryStats(c.qstats)
		s.SetResidentStore(c.resident)
		c.sessions[user] = s
	}
	return s
}

// Query executes one HiveQL statement as the "default" user and drives
// the simulation until the query completes.
func (c *Cluster) Query(sql string) (*hive.Result, error) {
	return c.Session("default").Execute(sql)
}

// Sample runs predicate-based sampling directly (without SQL): a
// dynamic MapReduce job over the named table returning k records
// satisfying the predicate, executed under the named growth policy
// ("" = LA). columns selects the output projection (nil = all).
func (c *Cluster) Sample(table, predicate string, k int64, policy string, columns []string) (*hive.Result, error) {
	if policy == "" {
		policy = hive.DefaultPolicy
	}
	// "Adaptive" is the §VII runtime-selection mode, resolved by the
	// session rather than the registry.
	if !strings.EqualFold(policy, "adaptive") {
		if _, err := c.policies.Get(policy); err != nil {
			return nil, err
		}
	}
	sess := c.Session("default")
	prev := sess.Get(mapreduce.ConfDynamicPolicy, "")
	sess.Set(mapreduce.ConfDynamicPolicy, policy)
	defer func() {
		if prev == "" {
			sess.Set(mapreduce.ConfDynamicPolicy, hive.DefaultPolicy)
		} else {
			sess.Set(mapreduce.ConfDynamicPolicy, prev)
		}
	}()
	cols := "*"
	if len(columns) > 0 {
		cols = ""
		for i, col := range columns {
			if i > 0 {
				cols += ", "
			}
			cols += col
		}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s LIMIT %d", cols, table, predicate, k)
	return sess.Execute(sql)
}

// ParsePolicyXML parses a policy.xml document into a registry usable
// with WithPolicies.
func ParsePolicyXML(doc []byte) (*core.Registry, error) {
	return core.ParsePolicyXML(doc)
}

// SelectivityEstimate is the result of EstimateSelectivity.
type SelectivityEstimate struct {
	// Selectivity is the estimated match fraction.
	Selectivity float64
	// Matches and Records are what the job actually observed.
	Matches int64
	Records int64
	// RelativeError is the confidence half-width over the estimate.
	RelativeError float64
	// PartitionsProcessed is how much input the estimate cost.
	PartitionsProcessed int
	// ResponseTime is the job's virtual duration in seconds.
	ResponseTime float64
}

// EstimateSelectivity estimates a predicate's selectivity on a table
// to within maxRelErr relative error (95% confidence) using the §VI
// statistics-harness application of incremental processing: a dynamic
// counting job consumes randomly-ordered partitions under the named
// growth policy ("" = LA) until the confidence interval is tight,
// reading only as much input as the estimate requires.
func (c *Cluster) EstimateSelectivity(table, predicate string, maxRelErr float64, policy string) (SelectivityEstimate, error) {
	var out SelectivityEstimate
	tab, err := c.catalog.Lookup(table)
	if err != nil {
		return out, err
	}
	pred, err := hive.ParsePredicate(predicate)
	if err != nil {
		return out, err
	}
	if err := expr.Validate(pred, tab.Schema); err != nil {
		return out, err
	}
	if policy == "" {
		policy = hive.DefaultPolicy
	}
	pol, err := c.policies.Get(policy)
	if err != nil {
		return out, err
	}
	spec, err := sampling.NewEstimationJobSpec(pred, nil)
	if err != nil {
		return out, err
	}
	c.seed++
	provider := sampling.NewEstimatorProvider(maxRelErr, c.seed*7877)
	client, err := core.SubmitDynamic(c.jt, spec, mapreduce.SplitsForFile(tab.File), provider, pol)
	if err != nil {
		return out, err
	}
	job := client.Job()
	if !mapreduce.RunUntilDone(c.eng, job, c.eng.Now()+1e7) {
		return out, fmt.Errorf("dynamicmr: estimation job exceeded deadline")
	}
	if job.State() == mapreduce.StateFailed {
		return out, fmt.Errorf("dynamicmr: estimation job failed: %s", job.Failure())
	}
	// The provider's stopping-rule estimate reflects its last
	// evaluation; recompute from the final counters so in-flight maps
	// that finished after end-of-input are included.
	records := job.Counters.MapInputRecords
	matches := job.Counters.UserCounter(sampling.CounterMatches)
	est := sampling.Estimate{Matches: matches, Records: records}
	if records > 0 {
		est.Selectivity = float64(matches) / float64(records)
	}
	last := provider.Last()
	out = SelectivityEstimate{
		Selectivity:         est.Selectivity,
		Matches:             matches,
		Records:             records,
		RelativeError:       last.RelativeError,
		PartitionsProcessed: job.CompletedMaps(),
		ResponseTime:        job.ResponseTime(),
	}
	return out, nil
}
