// Reliability: MapReduce's fault model under a dynamic sampling job.
// This example injects map-task failures and a 10x-slower straggler
// node, enables speculative execution, and shows that the sample is
// still exact while the event log reveals the retries and backup
// attempts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynamicmr"
	"dynamicmr/internal/cluster"
	"dynamicmr/internal/mapreduce"
)

func main() {
	hw := cluster.PaperConfig()
	// Node 3 is a straggler at 1/10th speed.
	hw.NodeSpeedFactors = make([]float64, hw.Nodes)
	for i := range hw.NodeSpeedFactors {
		hw.NodeSpeedFactors[i] = 1
	}
	hw.NodeSpeedFactors[3] = 0.1

	rt := mapreduce.DefaultConfig()
	rt.SpeculativeExecution = true
	// CPU-heavy tasks so the straggler visibly straggles.
	rt.Costs.MapCPUPerRecordS = 4e-5
	// 10% of first attempts fail.
	rng := rand.New(rand.NewSource(4))
	rt.FailureInjector = func(j *mapreduce.Job, t *mapreduce.MapTask) bool {
		return t.Attempts == 1 && rng.Float64() < 0.10
	}

	c, err := dynamicmr.NewCluster(
		dynamicmr.WithHardware(hw),
		dynamicmr.WithRuntime(rt),
	)
	if err != nil {
		log.Fatal(err)
	}

	retries, speculative := 0, 0
	c.JobTracker().Subscribe(func(e mapreduce.TaskEvent) {
		switch e.Type {
		case mapreduce.EventMapFailed:
			retries++
			fmt.Printf("  !! map task %d failed on node %d (attempt %d) — will retry\n",
				e.TaskIndex, e.Node, e.Attempt)
		case mapreduce.EventMapStarted:
			if e.Speculative {
				speculative++
				fmt.Printf("  >> speculative backup for straggling task %d on node %d\n",
					e.TaskIndex, e.Node)
			}
		}
	})

	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: 2, Skew: 0, Rows: 1_000_000, Selectivity: 0.005, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running sampling query over a cluster with a straggler and flaky tasks...")
	res, err := c.Sample("lineitem", ds.Predicate().String(), 500, "HA", []string{"L_ORDERKEY"})
	if err != nil {
		log.Fatal(err)
	}

	job := res.Job
	fmt.Printf("\nsample size:          %d (exact despite %d failed attempts)\n", len(res.Rows), retries)
	fmt.Printf("response time:        %.2f virtual seconds\n", job.ResponseTime())
	fmt.Printf("failed attempts:      %d (counter: %d)\n", retries, job.Counters.FailedMapAttempts)
	fmt.Printf("speculative launches: %d (counter: %d)\n", speculative, job.Counters.SpeculativeLaunches)
	fmt.Printf("killed attempts:      %d\n", job.Counters.KilledAttempts)
	fmt.Printf("partitions processed: %d of %d (each exactly once)\n",
		job.CompletedMaps(), ds.NumPartitions())
}
