// Exploratory data analysis: the paper's §I statistician scenario. An
// analyst wants an approximate statistic over a sub-population of a
// massive un-indexed dataset — here, the mean extended price of
// high-quantity line items. A fixed-size predicate-based sample
// answers the question at a tiny fraction of a full scan's cost, and
// the dynamic job's cost stays flat as the dataset grows.
package main

import (
	"fmt"
	"log"

	"dynamicmr"
)

func main() {
	c, err := dynamicmr.NewCluster()
	if err != nil {
		log.Fatal(err)
	}

	// Three generations of the same dataset: the analyst's table keeps
	// growing as new data loads arrive.
	for _, scale := range []int{2, 5, 10} {
		name := fmt.Sprintf("lineitem_%dx", scale)
		// Skew 1 plants matches for the L_QUANTITY > 50 predicate.
		ds, err := c.LoadLineItem(name, dynamicmr.DatasetSpec{
			Scale:       scale,
			Skew:        1,
			Rows:        int64(scale) * 400_000,
			Selectivity: 0.005,
			Seed:        11,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Sample 500 matching records and estimate the statistic.
		res, err := c.Sample(name, "L_QUANTITY > 50", 500, "LA",
			[]string{"L_QUANTITY", "L_EXTENDEDPRICE"})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, r := range res.Rows {
			sum += r.MustGet("L_EXTENDEDPRICE").AsFloat()
		}
		mean := sum / float64(len(res.Rows))

		job := res.Job
		fmt.Printf("%-14s %9d rows  sample=%3d  est. mean price=%9.2f  "+
			"response=%6.2fs  partitions=%3d/%d  records scanned=%d\n",
			name, ds.TotalRows(), len(res.Rows), mean,
			job.ResponseTime(), job.CompletedMaps(), ds.NumPartitions(),
			job.Counters.MapInputRecords)
	}

	fmt.Println("\nNote how response time and partitions processed track the SAMPLE size,")
	fmt.Println("not the dataset size — the paper's headline property. A static (Hadoop-")
	fmt.Println("policy) execution would scan every partition of every generation.")

	// For contrast, compute the EXACT statistic over the largest table
	// with an aggregate query — a full scan whose cost grows with the
	// data (the alternative the statistician wanted to avoid).
	res, err := c.Query("SELECT AVG(L_EXTENDEDPRICE), COUNT(*) FROM lineitem_10x WHERE L_QUANTITY > 50")
	if err != nil {
		log.Fatal(err)
	}
	row := res.Rows[0]
	fmt.Printf("\nexact answer (full scan of lineitem_10x):\n")
	fmt.Printf("  AVG(L_EXTENDEDPRICE)=%9.2f over %d matching rows  "+
		"response=%6.2fs  partitions=%d (all of them)\n",
		row.At(0).AsFloat(), row.At(1).AsInt(),
		res.Job.ResponseTime(), res.Job.CompletedMaps())
}
