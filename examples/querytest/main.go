// Query testing: the paper's §I developer scenario. A developer wants
// to try a new query against "a small subset of data satisfying some
// constraints" before paying for a run over the whole dataset. This
// example compares how each Table I growth policy behaves while
// fetching that test subset, on an otherwise idle cluster — Figure 5
// in miniature, including the skew sensitivity of conservative
// policies.
package main

import (
	"fmt"
	"log"

	"dynamicmr"
	"dynamicmr/internal/core"
)

func main() {
	for _, skew := range []float64{0, 2} {
		fmt.Printf("=== skew z=%g ===\n", skew)
		// Fresh cluster per skew level so runs don't interleave.
		c, err := dynamicmr.NewCluster()
		if err != nil {
			log.Fatal(err)
		}
		ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
			Scale: 5,
			Skew:  skew,
			Rows:  4_000_000,
			Seed:  3,
		})
		if err != nil {
			log.Fatal(err)
		}
		pred := ds.Predicate().String()

		fmt.Printf("%-8s %-12s %-12s %-14s %s\n",
			"policy", "response(s)", "partitions", "records read", "evaluations")
		for _, policy := range []string{core.PolicyC, core.PolicyLA, core.PolicyMA, core.PolicyHA, core.PolicyHadoop} {
			res, err := c.Sample("lineitem", pred, 1000, policy, nil)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Rows) != 1000 {
				log.Fatalf("policy %s returned %d rows", policy, len(res.Rows))
			}
			evals := 0
			if res.Client != nil {
				evals = res.Client.Evaluations()
			}
			fmt.Printf("%-8s %-12.2f %-12d %-14d %d\n",
				policy, res.Job.ResponseTime(), res.Job.CompletedMaps(),
				res.Job.Counters.MapInputRecords, evals)
		}
		fmt.Println()
	}
	fmt.Println("Conservative policies read the least data but pay more evaluation rounds —")
	fmt.Println("worst under high skew, where many partitions contribute no matches (§V-C).")
}
