// Quickstart: build a simulated cluster, load a LINEITEM dataset, and
// obtain a predicate-based sample with a single query — watching the
// dynamic job consume only as much input as the sample requires.
package main

import (
	"fmt"
	"log"

	"dynamicmr"
)

func main() {
	// The paper's testbed: 10 nodes x 4 cores x 4 disks, 40 map slots.
	c, err := dynamicmr.NewCluster()
	if err != nil {
		log.Fatal(err)
	}

	// A 5x-scale LINEITEM table (30M rows at full size; shrunk here so
	// the example runs in a second) with a moderately skewed (z=1)
	// distribution of predicate matches across its 40 partitions.
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale:       5,
		Skew:        1,
		Rows:        2_000_000,
		Selectivity: 0.005, // 10k matching records
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table lineitem: %d rows in %d partitions, %d records match %s\n\n",
		ds.TotalRows(), ds.NumPartitions(), ds.TotalMatches(), ds.Predicate())

	// The paper's query template (§V-B). LIMIT queries compile to a
	// *dynamic* MapReduce job: an Input Provider adds partitions
	// incrementally until the sample is complete.
	res, err := c.Query(
		"SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 1000")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sample size: %d records\n", len(res.Rows))
	fmt.Printf("first three: \n")
	for _, r := range res.Rows[:3] {
		fmt.Printf("  %s\n", r)
	}
	job := res.Job
	fmt.Printf("\nresponse time:        %.2f virtual seconds\n", job.ResponseTime())
	fmt.Printf("partitions processed: %d of %d\n", job.CompletedMaps(), ds.NumPartitions())
	fmt.Printf("records scanned:      %d of %d\n", job.Counters.MapInputRecords, ds.TotalRows())
	fmt.Printf("policy:               %s (%d provider evaluations)\n",
		res.Client.Policy().Name, res.Client.Evaluations())
	for _, d := range res.Client.Decisions() {
		fmt.Printf("  t=%6.2fs  %-18s added=%d grabLimit=%d completedMaps=%d\n",
			d.Time, d.Response, d.Added, d.GrabLimit, d.CompletedMaps)
	}
}
