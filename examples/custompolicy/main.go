// Custom policies: §IV notes that "an end-user can also choose to form
// new policies" by editing policy.xml. This example defines a policy
// file with two custom entries — an "UltraConservative" policy and a
// "Burst" policy whose grab limit is a richer expression over AS/TS —
// loads it into a cluster, and compares them with a built-in, also
// demonstrating the §VII runtime-adaptive mode.
package main

import (
	"fmt"
	"log"

	"dynamicmr"
)

const policyXML = `<?xml version="1.0" encoding="UTF-8"?>
<policies>
  <policy name="Hadoop">
    <description>all input up front</description>
    <evaluationIntervalSeconds>4</evaluationIntervalSeconds>
    <workThresholdPercent>0</workThresholdPercent>
    <grabLimit>inf</grabLimit>
  </policy>
  <policy name="LA">
    <description>less aggressive (Table I)</description>
    <evaluationIntervalSeconds>4</evaluationIntervalSeconds>
    <workThresholdPercent>10</workThresholdPercent>
    <grabLimit>AS &gt; 0 ? 0.2*AS : 0.1*TS</grabLimit>
  </policy>
  <policy name="UltraConservative">
    <description>one partition at a time, frequent checks</description>
    <evaluationIntervalSeconds>2</evaluationIntervalSeconds>
    <workThresholdPercent>0</workThresholdPercent>
    <grabLimit>min(1, AS)</grabLimit>
  </policy>
  <policy name="Burst">
    <description>half the cluster when idle, trickle when loaded</description>
    <evaluationIntervalSeconds>4</evaluationIntervalSeconds>
    <workThresholdPercent>5</workThresholdPercent>
    <grabLimit>AS &gt;= 0.8*TS ? 0.5*TS : max(1, 0.05*TS)</grabLimit>
  </policy>
</policies>`

func main() {
	registry, err := dynamicmr.ParsePolicyXML([]byte(policyXML))
	if err != nil {
		log.Fatal(err)
	}
	c, err := dynamicmr.NewCluster(dynamicmr.WithPolicies(registry))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: 5, Skew: 1, Rows: 2_000_000, Selectivity: 0.005, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := ds.Predicate().String()

	fmt.Printf("policies loaded from policy.xml: %v\n\n", registry.Names())
	fmt.Printf("%-18s %-12s %-11s %-12s %s\n", "policy", "response(s)", "partitions", "evaluations", "records read")
	for _, name := range []string{"UltraConservative", "LA", "Burst", "Hadoop", "Adaptive"} {
		res, err := c.Sample("lineitem", pred, 1000, name, []string{"L_ORDERKEY"})
		if err != nil {
			log.Fatal(err)
		}
		evals := 0
		if res.Client != nil {
			evals = res.Client.Evaluations()
		}
		fmt.Printf("%-18s %-12.2f %-11d %-12d %d\n",
			name, res.Job.ResponseTime(), res.Job.CompletedMaps(), evals,
			res.Job.Counters.MapInputRecords)
	}
	fmt.Println("\n'Adaptive' is not in the XML: it is the §VII future-work mode, which")
	fmt.Println("re-picks a Table I policy at every evaluation from the observed load.")
}
