// Shared-cluster throughput: the paper's §V-E heterogeneous scenario.
// A group of users share one cluster; some draw predicate-based
// samples while the rest run full select-project scans. The growth
// policy the sampling users adopt decides how much cluster capacity is
// left for everyone else — conservative sampling multiplies the scan
// class's throughput.
package main

import (
	"fmt"
	"log"

	"dynamicmr"
	"dynamicmr/internal/core"
	"dynamicmr/internal/workload"
)

func main() {
	for _, policy := range []string{core.PolicyHadoop, core.PolicyLA} {
		thr, err := runMix(policy)
		if err != nil {
			log.Fatal(err)
		}
		samp, _ := thr.Class("Sampling")
		scan, _ := thr.Class("Non-Sampling")
		fmt.Printf("sampling class policy %-7s  sampling: %6.1f jobs/hour   non-sampling: %6.1f jobs/hour\n",
			policy, samp.ThroughputJobsPerHour, scan.ThroughputJobsPerHour)
	}
	fmt.Println("\nWhen the sampling users switch from the Hadoop policy to LA, the scan")
	fmt.Println("class's throughput jumps — the paper measured 3-8x (§V-E, Figure 7).")
}

func runMix(policy string) (workload.Results, error) {
	// Multi-user slot configuration (16 map slots per node, §V-D).
	c, err := dynamicmr.NewCluster(dynamicmr.WithMultiUserSlots())
	if err != nil {
		return workload.Results{}, err
	}
	const users = 4
	var group []*workload.User
	for u := 0; u < users; u++ {
		// Per-user dataset copy, uniform match distribution (§V-E).
		name := fmt.Sprintf("lineitem_u%d", u)
		ds, err := c.LoadLineItem(name, dynamicmr.DatasetSpec{
			Scale: 25, Skew: 0, Rows: 60_000_000, Seed: int64(u),
		})
		if err != nil {
			return workload.Results{}, err
		}
		pred := ds.Predicate().String()
		sess := c.Session(fmt.Sprintf("user%d", u))
		if u < users/2 {
			sess.Set("dynamic.job.policy", policy)
			group = append(group, &workload.User{
				Name:  fmt.Sprintf("user%d", u),
				Class: "Sampling",
				Query: fmt.Sprintf(
					"SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s LIMIT 1000", name, pred),
				Session: sess,
			})
		} else {
			group = append(group, &workload.User{
				Name:  fmt.Sprintf("user%d", u),
				Class: "Non-Sampling",
				Query: fmt.Sprintf(
					"SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s", name, pred),
				Session: sess,
			})
		}
	}
	return workload.Run(c.Engine(), group, workload.Config{WarmupS: 120, MeasureS: 600})
}
