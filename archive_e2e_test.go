package dynamicmr

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/trace"
)

// archiveTwinRun executes the canned three-query session under one
// engine mode and returns its archive after a bytes round-trip, so the
// comparison below exercises the wire format, not just the in-memory
// structs.
func archiveTwinRun(t *testing.T, mode string) *runarchive.Archive {
	t.Helper()
	c, err := NewCluster(WithTracing(trace.Config{}), WithQueryStats(), WithEngineMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := c.BuildArchive(mode+" twin", runarchive.RunConfig{Policy: "LA", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := runarchive.Load(&buf)
	if err != nil {
		t.Fatalf("%s archive does not round-trip: %v", mode, err)
	}
	return loaded
}

// TestArchiveOverhead guards the archiving cost: snapshotting and
// writing the bundle on top of a traced quickstart run must stay under
// 5% of the traced run's wall clock (same min-of-N discipline and
// absolute allowance as the tracing, sampler and diagnosis overhead
// checks).
func TestArchiveOverhead(t *testing.T) {
	const runs = 5
	run := func(archive bool) (time.Duration, float64) {
		c, err := NewCluster(WithTracing(trace.Config{}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 200 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		if archive {
			a, err := c.BuildArchive("overhead", runarchive.RunConfig{Policy: "LA", Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Write(io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start), c.Now()
	}
	minWall := func(archive bool) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := run(archive)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	run(false) // warm-up
	base, baseV := minWall(false)
	on, onV := minWall(true)

	if math.Abs(baseV-onV) > 0.01*baseV {
		t.Fatalf("archiving changed the virtual timeline: base=%vs on=%vs", baseV, onV)
	}
	budget := base + base/20 + 25*time.Millisecond
	if on > budget {
		t.Fatalf("archived run took %v, traced run %v: archiving overhead exceeds 5%%", on, base)
	}
	t.Logf("traced quickstart min-of-%d: %v; with BuildArchive+Write: %v", runs, base, on)
}

// TestDiffBaselineVsMemoryTwinRuns is the acceptance pin for `dynmr
// diff`: a baseline and a memory-engine run of the same session are
// virtual-time twins, so the diff must align every query, report
// per-component deltas summing to the makespan delta (here all zero),
// find no divergent provider decision — while the engine counters
// still reveal which run used the resident store.
func TestDiffBaselineVsMemoryTwinRuns(t *testing.T) {
	a := archiveTwinRun(t, EngineModeBaseline)
	b := archiveTwinRun(t, EngineModeMemory)

	if a.Manifest.Config.EngineMode != EngineModeBaseline || b.Manifest.Config.EngineMode != EngineModeMemory {
		t.Fatalf("engine modes not recorded: %q / %q",
			a.Manifest.Config.EngineMode, b.Manifest.Config.EngineMode)
	}

	rep, err := runarchive.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("diff invariants: %v", err)
	}
	if len(rep.Jobs) != 3 || len(rep.OnlyA) != 0 || len(rep.OnlyB) != 0 {
		t.Fatalf("want 3 aligned queries, got %d (+%v/-%v)", len(rep.Jobs), rep.OnlyA, rep.OnlyB)
	}
	for _, j := range rep.Jobs {
		// qstats attaches on both sides, so alignment is query-keyed.
		if j.Key == "" || j.Key[0] != 'q' {
			t.Errorf("job %d/%d aligned by %q, want a query ID", j.AJob, j.BJob, j.Key)
		}
		// The delta-sum invariant, re-checked against the raw values.
		sum := 0.0
		for _, comp := range j.Components {
			sum += comp.DeltaS
		}
		if math.Abs(sum-j.MakespanDeltaS) > 1e-6*math.Max(1, j.AMakespanS) {
			t.Errorf("query %s: component deltas sum to %g, makespan delta %g", j.Key, sum, j.MakespanDeltaS)
		}
		// Engine modes are virtual-time byte-identical: every delta zero.
		if j.MakespanDeltaS != 0 {
			t.Errorf("query %s: makespan delta %g between twin engine modes", j.Key, j.MakespanDeltaS)
		}
		if j.FirstDivergence != nil {
			t.Errorf("query %s: unexpected provider divergence %+v", j.Key, j.FirstDivergence)
		}
		if j.Path.FirstKindDifference != -1 {
			t.Errorf("query %s: critical paths differ at %d", j.Key, j.Path.FirstKindDifference)
		}
	}
	if rep.TotalMakespanDeltaS != 0 {
		t.Errorf("total makespan delta %g between twin engine modes", rep.TotalMakespanDeltaS)
	}

	// The runs are simulation twins but not execution twins: the memory
	// side must show resident-store activity in the counter deltas.
	deltas := map[string]int64{}
	for _, cd := range rep.CounterDeltas {
		deltas[cd.Name] = cd.Delta
	}
	if deltas[trace.CounterDeltaShuffleHits] <= 0 {
		t.Errorf("memory run should add delta-shuffle hits; counter deltas: %v", deltas)
	}
}

// archivePathRun is archiveTwinRun's input-path sibling: the same
// canned three-query session, run under one map-task read path. The
// dataset geometry makes pruning unavoidable on every split — 13
// zones per partition against ~20 planted matches across the table —
// so the skip-scan side is strictly faster, not just faster on the
// cold partitions off the critical path.
func archivePathRun(t *testing.T, path string) *runarchive.Archive {
	t.Helper()
	c, err := NewCluster(WithTracing(trace.Config{}), WithQueryStats(), WithInputPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.00005, Partitions: 8, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		if _, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := c.BuildArchive(path+" run", runarchive.RunConfig{Policy: "LA", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := runarchive.Load(&buf)
	if err != nil {
		t.Fatalf("%s archive does not round-trip: %v", path, err)
	}
	return loaded
}

// TestDiffFullVsSkipScanRuns is the input-path acceptance pin for
// `dynmr diff`: diffing a full-scan run against its skip-scan twin
// must align every query, attribute the (negative) makespan delta to
// the data-read components of the breakdown, and surface the pruning
// in the scan counters — the exact workflow a user follows to confirm
// where -input-path skip saved time.
func TestDiffFullVsSkipScanRuns(t *testing.T) {
	a := archivePathRun(t, InputPathFull)
	b := archivePathRun(t, InputPathSkip)

	// Full mode stays the empty default (archive bytes identical to
	// pre-field runs); skip mode is recorded as provenance.
	if a.Manifest.Config.InputPath != "" {
		t.Fatalf("full-scan archive records input path %q, want empty", a.Manifest.Config.InputPath)
	}
	if b.Manifest.Config.InputPath != InputPathSkip {
		t.Fatalf("skip-scan archive records input path %q", b.Manifest.Config.InputPath)
	}

	rep, err := runarchive.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("diff invariants: %v", err)
	}
	if len(rep.Jobs) != 3 || len(rep.OnlyA) != 0 || len(rep.OnlyB) != 0 {
		t.Fatalf("want 3 aligned queries, got %d (+%v/-%v)", len(rep.Jobs), rep.OnlyA, rep.OnlyB)
	}
	for _, j := range rep.Jobs {
		if j.Key == "" || j.Key[0] != 'q' {
			t.Errorf("job %d/%d aligned by %q, want a query ID", j.AJob, j.BJob, j.Key)
		}
		sum := 0.0
		for _, comp := range j.Components {
			sum += comp.DeltaS
		}
		if math.Abs(sum-j.MakespanDeltaS) > 1e-6*math.Max(1, j.AMakespanS) {
			t.Errorf("query %s: component deltas sum to %g, makespan delta %g", j.Key, sum, j.MakespanDeltaS)
		}
		// Skip-scan must be strictly faster at z=1 — that's the point.
		if j.MakespanDeltaS >= 0 {
			t.Errorf("query %s: skip-scan makespan delta %g, want < 0", j.Key, j.MakespanDeltaS)
		}
		// ... and the diff must attribute the win to the scan: the
		// data-read components carry a net negative delta.
		read := 0.0
		for _, comp := range j.Components {
			if comp.Name == "data-read-local" || comp.Name == "data-read-remote" {
				read += comp.DeltaS
			}
		}
		if read >= 0 {
			t.Errorf("query %s: data-read delta %g, want < 0; components: %+v", j.Key, read, j.Components)
		}
	}
	if rep.TotalMakespanDeltaS >= 0 {
		t.Errorf("total makespan delta %g, want a skip-scan win", rep.TotalMakespanDeltaS)
	}

	// The counter deltas expose the mechanism: the skip side skipped
	// blocks the full side read.
	deltas := map[string]int64{}
	for _, cd := range rep.CounterDeltas {
		deltas[cd.Name] = cd.Delta
	}
	if deltas[trace.CounterScanBlocksSkipped] <= 0 {
		t.Errorf("skip run should skip blocks; counter deltas: %v", deltas)
	}
	if deltas[trace.CounterScanBlocksRead] >= 0 {
		t.Errorf("skip run should read fewer blocks; counter deltas: %v", deltas)
	}
}
