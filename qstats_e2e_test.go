package dynamicmr

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
)

// TestQueryStatsE2E is the acceptance run: 50 queries through the
// facade with WithQueryStats, then every record in the dump must carry
// a consistent lifecycle (submit <= first-match <= limit-hit <=
// finish), a diagnosis whose breakdown components sum to that query's
// makespan, and sane attribution; the dump round-trips as
// dynamicmr.qstats/1 JSON.
func TestQueryStatsE2E(t *testing.T) {
	const nq = 50
	c, err := NewCluster(WithQueryStats())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	policies := []string{"LA", "HA", "MA"}
	for q := 0; q < nq; q++ {
		if _, err := c.Session("default").Execute(
			"SET dynamic.job.policy = " + policies[q%len(policies)]); err != nil {
			t.Fatal(err)
		}
		res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 200 {
			t.Fatalf("query %d: rows = %d", q, len(res.Rows))
		}
	}

	reg := c.QueryStats()
	started, finished, failed := reg.Totals()
	if started != nq || finished != nq || failed != 0 {
		t.Fatalf("totals: started=%d finished=%d failed=%d, want %d/%d/0", started, finished, failed, nq, nq)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump qstats.Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if dump.Schema != qstats.SchemaVersion {
		t.Fatalf("schema = %q, want %q", dump.Schema, qstats.SchemaVersion)
	}
	if len(dump.Queries) != nq || len(dump.InFlight) != 0 {
		t.Fatalf("dump has %d finished, %d in flight", len(dump.Queries), len(dump.InFlight))
	}

	for _, q := range dump.Queries {
		if q.State != qstats.StateOK {
			t.Fatalf("%s: state %q (%s)", q.ID, q.State, q.Error)
		}
		// Lifecycle ordering on the virtual clock.
		if !(q.SubmitVT <= q.FirstMatchVT && q.FirstMatchVT <= q.LimitHitVT && q.LimitHitVT <= q.FinishVT) {
			t.Fatalf("%s: lifecycle out of order: submit=%g firstMatch=%g limitHit=%g finish=%g",
				q.ID, q.SubmitVT, q.FirstMatchVT, q.LimitHitVT, q.FinishVT)
		}
		if got := q.FinishVT - q.SubmitVT; math.Abs(got-q.LatencyVirtualS) > 1e-9 {
			t.Fatalf("%s: latency %g != finish-submit %g", q.ID, q.LatencyVirtualS, got)
		}
		// Attribution.
		if q.K != 200 || q.Rows != 200 || q.Matches < 200 {
			t.Fatalf("%s: k=%d rows=%d matches=%d", q.ID, q.K, q.Rows, q.Matches)
		}
		if q.OvershootRows != q.Matches-q.K {
			t.Fatalf("%s: overshoot %d, matches %d, k %d", q.ID, q.OvershootRows, q.Matches, q.K)
		}
		if q.SplitsScanned <= 0 || q.SplitsScanned > q.SplitsGrabbed || q.SplitsGrabbed > q.SplitsTotal {
			t.Fatalf("%s: splits scanned=%d grabbed=%d total=%d", q.ID, q.SplitsScanned, q.SplitsGrabbed, q.SplitsTotal)
		}
		if q.RecordsRead <= 0 || q.MapSeconds <= 0 {
			t.Fatalf("%s: records=%d mapSeconds=%g", q.ID, q.RecordsRead, q.MapSeconds)
		}
		// The incremental per-query diagnosis must exist and its
		// breakdown must sum to this query's makespan.
		if q.Diagnosis == nil {
			t.Fatalf("%s: no diagnosis (%s)", q.ID, q.DiagError)
		}
		if err := q.Diagnosis.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if got := q.Diagnosis.Breakdown.Total(); math.Abs(got-q.LatencyVirtualS) > 1e-6 {
			t.Fatalf("%s: breakdown sums to %g, makespan %g", q.ID, got, q.LatencyVirtualS)
		}
	}

	// Per-policy aggregates: every policy saw its share, quantiles
	// bound the latencies.
	if len(dump.Policies) != len(policies) {
		t.Fatalf("dump has %d policy aggregates, want %d", len(dump.Policies), len(policies))
	}
	for _, p := range dump.Policies {
		if p.Finished == 0 || p.VirtualP50S <= 0 || p.VirtualP99S < p.VirtualP50S {
			t.Fatalf("policy %s: %+v", p.Policy, p)
		}
	}
}

// TestQueryStatsNeutralWhenDisabled: without WithQueryStats the same
// workload must follow a bit-identical virtual timeline and produce
// identical results — the instrumentation is truly absent, not merely
// cheap.
func TestQueryStatsNeutralWhenDisabled(t *testing.T) {
	run := func(enabled bool) (float64, string) {
		opts := []Option{WithTracing(trace.Config{})}
		if enabled {
			opts = append(opts, WithQueryStats())
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		var rows bytes.Buffer
		for q := 0; q < 3; q++ {
			res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Rows {
				rows.WriteString(r.String())
				rows.WriteByte('\n')
			}
		}
		return c.Now(), rows.String()
	}
	offV, offRows := run(false)
	onV, onRows := run(true)
	if offV != onV {
		t.Fatalf("qstats changed the virtual timeline: off=%v on=%v", offV, onV)
	}
	if offRows != onRows {
		t.Fatal("qstats changed query output")
	}
}

// TestQueryStatsOverhead pins the live-registry cost: the instrumented
// serve-style loop (WithQueryStats, which also forces tracing) must
// stay within 5% of the traced-only baseline, with the same min-of-N
// discipline and absolute allowance as the other overhead guards.
func TestQueryStatsOverhead(t *testing.T) {
	const runs = 5
	run := func(stats bool) (time.Duration, float64) {
		opts := []Option{WithTracing(trace.Config{})}
		if stats {
			opts = append(opts, WithQueryStats())
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 2, Skew: 1, Selectivity: 0.005, Rows: 400_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for q := 0; q < 3; q++ {
			res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 200")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 200 {
				t.Fatalf("rows = %d", len(res.Rows))
			}
		}
		if stats {
			if _, finished, _ := c.QueryStats().Totals(); finished != 3 {
				t.Fatalf("registry finished = %d", finished)
			}
		}
		return time.Since(start), c.Now()
	}
	minWall := func(stats bool) (time.Duration, float64) {
		best, virtual := time.Duration(1<<62), 0.0
		for i := 0; i < runs; i++ {
			w, v := run(stats)
			if w < best {
				best = w
			}
			virtual = v
		}
		return best, virtual
	}
	run(false) // warm-up
	base, baseV := minWall(false)
	on, onV := minWall(true)

	if baseV != onV {
		t.Fatalf("qstats changed the virtual timeline: base=%vs on=%vs", baseV, onV)
	}
	budget := base + base/20 + 25*time.Millisecond
	if on > budget {
		t.Fatalf("instrumented loop took %v, traced baseline %v: qstats overhead exceeds 5%%", on, base)
	}
	t.Logf("traced 3-query loop min-of-%d: %v; with qstats: %v", runs, base, on)
}
